"""RunReport differential tests: round-trips, figure parity, chaos spans."""

from __future__ import annotations

import csv
import io
import json
from collections import Counter

import pytest

from repro.experiments.harness import NetworkSetup, run_report_experiment
from repro.faults import ChaosConfig, run_chaos_schedule
from repro.obs.report import RunReport

#: A handful of chaos-matrix schedules (seeds × loss) kept cheap enough
#: for tier-1; the full matrix lives behind the ``chaos`` marker.
CHAOS_CASES = [
    pytest.param(0, 0.0, id="seed0-lossless"),
    pytest.param(1, 0.0, id="seed1-lossless"),
    pytest.param(0, 0.4, id="seed0-lossy"),
    pytest.param(2, 0.4, id="seed2-lossy"),
]


@pytest.fixture(scope="module")
def small_run():
    """One seeded 30-node maintenance-plus-queries run, shared read-only."""
    return run_report_experiment(
        setup=NetworkSetup(n_nodes=30), seed=11, rounds=3
    )


class TestRoundTrip:
    def test_jsonl_round_trip_preserves_summary_exactly(self, small_run):
        report = small_run.report
        parsed = RunReport.from_jsonl(report.to_jsonl())
        assert parsed.meta == report.meta
        assert parsed.rows == report.rows
        # The differential check: export → parse → *identical* summary.
        assert parsed.summary() == report.summary()

    def test_jsonl_lines_are_valid_json_with_meta_first(self, small_run):
        lines = small_run.report.to_jsonl().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["record"] == "meta"
        assert len(records) == 1 + len(small_run.report.rows)

    def test_csv_export_is_rectangular(self, small_run):
        reader = csv.DictReader(io.StringIO(small_run.report.to_csv()))
        rows = list(reader)
        assert len(rows) == len(small_run.report.rows)
        assert all(row["record"] for row in rows)

    def test_summary_is_derived_only_from_meta_and_rows(self, small_run):
        """Mutating the source runtime after capture must not leak in."""
        report = small_run.report
        before = report.summary()
        small_run.runtime.stats.sent[(0, "DataReport")] += 1000
        try:
            assert report.summary() == before
        finally:
            small_run.runtime.stats.sent[(0, "DataReport")] -= 1000


class TestFigureParity:
    """The acceptance criterion: ``repro report`` on a seeded 100-node
    maintenance run reproduces the Figure 15 messages-per-node numbers
    and the Figure 10 coverage numbers."""

    @pytest.fixture(scope="class")
    def full_run(self):
        return run_report_experiment(setup=NetworkSetup(), seed=2005)

    def test_fig15_messages_per_node_matches_maintenance_exactly(self, full_run):
        summary = full_run.report.summary()
        # Bit-identical: the histogram accumulates costs in the same
        # order the maintenance window averages them.
        assert summary["messages_per_node_per_round"] == (
            full_run.runtime.maintenance.average_messages_per_node()
        )
        # Figure 15 band: steady-state §5.1 maintenance on the 100-node
        # network costs a handful of messages per node per period.
        assert 0.0 < summary["messages_per_node_per_round"] <= 6.0

    def test_fig10_coverage_matches_series_exactly(self, full_run):
        summary = full_run.report.summary()
        assert summary["coverage_auc"] == full_run.coverage.area
        assert summary["coverage_mean"] == pytest.approx(
            full_run.coverage.mean
        )
        # Full-range topology: snapshot queries see the whole network.
        assert summary["coverage_mean"] == pytest.approx(1.0)

    @pytest.mark.parametrize("policy", ["model-aware", "round-robin"])
    def test_parity_holds_under_both_cache_policies(self, policy):
        run = run_report_experiment(
            setup=NetworkSetup(n_nodes=30, cache_policy=policy),
            seed=11,
            rounds=3,
        )
        summary = run.report.summary()
        assert summary["messages_per_node_per_round"] == (
            run.runtime.maintenance.average_messages_per_node()
        )
        assert summary["coverage_auc"] == run.coverage.area
        assert summary["cache_observations"] > 0
        assert RunReport.from_jsonl(run.report.to_jsonl()).summary() == summary


class TestChaosSpans:
    """Span begin/end pairs stay balanced per name and epoch even when
    the schedule crashes representatives mid-round."""

    @pytest.mark.parametrize("seed,loss", CHAOS_CASES)
    def test_spans_balance_on_chaos_schedules(self, seed, loss):
        result = run_chaos_schedule(
            ChaosConfig(seed=seed, loss_burst=loss, keep_trace_records=True)
        )
        assert result.ok
        trace = result.runtime.simulator.trace
        begins = list(trace.of_kind("span.begin"))
        ends = list(trace.of_kind("span.end"))
        assert begins, "chaos schedule produced no spans"
        # Balanced overall, by unique span id...
        assert Counter(r.payload["span"] for r in begins) == Counter(
            r.payload["span"] for r in ends
        )
        # ...and per (name, epoch) timeline.
        def key(record):
            return (record.payload["name"], record.payload.get("epoch"))

        assert Counter(key(r) for r in begins) == Counter(key(r) for r in ends)

    def test_chaos_result_report_round_trips(self):
        result = run_chaos_schedule(ChaosConfig(seed=0))
        report = result.report(meta={"loss_burst": 0.0})
        assert report.meta["loss_burst"] == 0.0
        assert report.summary()["messages_total"] > 0
        assert RunReport.from_jsonl(report.to_jsonl()).summary() == (
            report.summary()
        )


class TestCli:
    def test_repro_report_writes_jsonl_and_csv(self, tmp_path, capsys):
        from repro.cli import main

        jsonl = tmp_path / "run.jsonl"
        out_csv = tmp_path / "run.csv"
        code = main(
            [
                "report",
                "--nodes", "20",
                "--rounds", "2",
                "--jsonl", str(jsonl),
                "--csv", str(out_csv),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "msgs/node/round" in output
        parsed = RunReport.from_jsonl(jsonl.read_text())
        assert parsed.summary()["maintenance_rounds"] >= 2
        with out_csv.open() as handle:
            assert len(list(csv.DictReader(handle))) == len(parsed.rows)
