"""Span tracing: begin/end balance, durations, disabled behavior."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.spans import NULL_SPAN, SpanTracer
from repro.simulation.engine import Simulator
from repro.simulation.tracing import TraceLog

from tests.conftest import make_runtime


class _Clock:
    def __init__(self) -> None:
        self.now = 0.0


def make_tracer(registry=None):
    return SpanTracer(TraceLog(), _Clock(), registry)


def assert_spans_balanced(trace: TraceLog) -> None:
    """Every span.begin has exactly one span.end with the same id."""
    begins = Counter(r.payload["span"] for r in trace.of_kind("span.begin"))
    ends = Counter(r.payload["span"] for r in trace.of_kind("span.end"))
    assert begins == ends
    assert all(count == 1 for count in begins.values())


class TestSpanBasics:
    def test_context_manager_emits_balanced_pair(self):
        tracer = make_tracer()
        with tracer.span("election", epoch=1) as span:
            tracer._clock.now = 3.0
        assert span.duration == 3.0
        assert tracer.trace.count("span.begin") == 1
        assert tracer.trace.count("span.end") == 1
        assert_spans_balanced(tracer.trace)

    def test_begin_end_handle_is_idempotent(self):
        tracer = make_tracer()
        handle = tracer.begin("maintenance.round", index=1)
        tracer._clock.now = 5.0
        handle.end()
        handle.end()
        assert tracer.trace.count("span.end") == 1
        assert handle.duration == 5.0
        assert not handle.open

    def test_span_ids_are_unique(self):
        tracer = make_tracer()
        ids = set()
        for _ in range(10):
            span = tracer.begin("q")
            ids.add(span.span_id)
            span.end()
        assert len(ids) == 10

    def test_end_record_carries_labels_and_duration(self):
        tracer = make_tracer()
        span = tracer.begin("query", node=3)
        tracer._clock.now = 1.5
        span.end()
        [end] = tracer.trace.of_kind("span.end")
        assert end.payload["name"] == "query"
        assert end.payload["node"] == 3
        assert end.payload["duration"] == 1.5

    def test_instant_emits_single_record(self):
        tracer = make_tracer()
        tracer.instant("cache.admit", node=2, action="shift")
        assert tracer.trace.count("span.instant") == 1
        assert tracer.trace.count("span.begin") == 0

    def test_registry_accumulates_counts_and_durations(self):
        registry = MetricsRegistry()
        tracer = make_tracer(registry)
        for _ in range(3):
            tracer.begin("election").end()
        assert registry.metric("span.count").value("election") == 3
        cell = registry.metric("span.duration").cell("election")
        assert cell.count == 3


class TestDisabledTracer:
    def test_disabled_registry_yields_null_span(self):
        registry = MetricsRegistry(enabled=False)
        tracer = make_tracer(registry)
        span = tracer.begin("election")
        assert span is NULL_SPAN
        with tracer.span("query"):
            pass
        tracer.instant("cache.admit")
        assert tracer.trace.counts == Counter()

    def test_reenabling_restores_real_spans(self):
        registry = MetricsRegistry(enabled=False)
        tracer = make_tracer(registry)
        assert tracer.begin("a") is NULL_SPAN
        registry.enabled = True
        span = tracer.begin("a")
        assert span is not NULL_SPAN
        span.end()
        assert_spans_balanced(tracer.trace)


class TestEngineSpans:
    def test_simulator_tracer_uses_sim_time(self):
        simulator = Simulator(seed=1)
        span = simulator.spans.begin("work")
        simulator.schedule(2.5, lambda: None)
        simulator.run()
        span.end()
        assert span.duration == 2.5

    def test_discovery_run_spans_are_balanced(self):
        runtime = make_runtime(keep_trace_records=True)
        runtime.train(duration=10)
        runtime.run_election()
        runtime.start_maintenance()
        runtime.advance_to(runtime.now + 250.0)
        runtime.maintenance.stop()
        trace = runtime.simulator.trace
        assert trace.count("span.begin") > 0
        assert_spans_balanced(trace)

    def test_election_span_brackets_the_round(self):
        runtime = make_runtime(keep_trace_records=True)
        runtime.train(duration=10)
        runtime.run_election()
        [begin] = runtime.simulator.trace.of_kind("span.begin")
        [end] = runtime.simulator.trace.of_kind("span.end")
        assert begin.payload["name"] == "election"
        assert end.payload["duration"] == pytest.approx(
            runtime.coordinator.settle_delay
        )
