"""Unit tests for the savings-experiment plumbing (Table 3 / Figure 10)."""

from __future__ import annotations

import pytest

from repro.experiments.harness import NetworkSetup
from repro.experiments.savings import (
    LifetimeResult,
    Table3Cell,
    Table3Result,
    table3_savings,
)
from repro.query.coverage import CoverageSeries


class TestTable3Containers:
    def test_cell_percent(self):
        cell = Table3Cell(
            query_area=0.1,
            transmission_range=0.7,
            n_classes=1,
            savings=0.77,
            n_queries=200,
            snapshot_size=4,
        )
        assert cell.percent == pytest.approx(77.0)

    def test_result_lookup(self):
        result = Table3Result()
        cell = Table3Cell(0.1, 0.7, 1, 0.5, 10, 3)
        result.cells[(0.1, 0.7, 1)] = cell
        assert result.cell(0.1, 0.7, 1) is cell
        with pytest.raises(KeyError):
            result.cell(0.5, 0.7, 1)


class TestLifetimeResult:
    def test_area_gain(self):
        regular = CoverageSeries(samples=[1.0, 0.5])
        snapshot = CoverageSeries(samples=[1.0, 1.0])
        assert LifetimeResult(regular, snapshot).area_gain == pytest.approx(4 / 3)

    def test_area_gain_degenerate(self):
        empty = CoverageSeries(samples=[0.0])
        full = CoverageSeries(samples=[1.0])
        assert LifetimeResult(empty, full).area_gain == float("inf")
        assert LifetimeResult(empty, empty).area_gain == 1.0


class TestTable3SmallScale:
    def test_single_cell_runs_and_saves(self):
        """A minimal single-configuration Table 3 run produces a
        sensible savings figure for a broad query on correlated data."""
        result = table3_savings(
            areas=(0.5,),
            ranges=(0.7,),
            classes=(1,),
            n_queries=20,
            setup=NetworkSetup(n_nodes=30),
        )
        cell = result.cell(0.5, 0.7, 1)
        assert 0.0 < cell.savings <= 1.0
        assert cell.n_queries > 0
        assert cell.snapshot_size >= 1
