"""Tests for the experiment harness plumbing."""

from __future__ import annotations

import math

import pytest

from repro.experiments.harness import (
    NetworkSetup,
    Series,
    SweepPoint,
    make_cache_factory,
    random_walk_dataset,
    repeat,
    weather_dataset,
)
from repro.models.cache_manager import ModelAwareCache
from repro.models.round_robin import RoundRobinCache


class TestNetworkSetup:
    def test_defaults_match_paper(self):
        setup = NetworkSetup()
        assert setup.n_nodes == 100
        assert setup.transmission_range == pytest.approx(math.sqrt(2))
        assert setup.cache_bytes == 2048
        assert setup.threshold == 1.0
        assert setup.metric_name == "sse"

    def test_with_creates_modified_copy(self):
        setup = NetworkSetup()
        modified = setup.with_(threshold=0.1)
        assert modified.threshold == 0.1
        assert setup.threshold == 1.0

    def test_protocol_config_propagates(self):
        config = NetworkSetup(threshold=3.0, snoop_probability=0.05).protocol_config()
        assert config.threshold == 3.0
        assert config.snoop_probability == 0.05
        assert config.metric.name == "sse"


class TestCacheFactory:
    def test_model_aware(self):
        factory = make_cache_factory("model-aware", 2048)
        assert isinstance(factory(), ModelAwareCache)
        assert factory() is not factory()  # fresh instance per node

    def test_round_robin(self):
        assert isinstance(make_cache_factory("round-robin", 2048)(), RoundRobinCache)

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make_cache_factory("lru", 2048)


class TestDatasets:
    def test_random_walk_shape(self):
        setup = NetworkSetup(n_nodes=10)
        data = random_walk_dataset(setup, n_classes=2, seed=1, length=30)
        assert data.n_nodes == 10
        assert data.length == 30

    def test_weather_shape(self):
        setup = NetworkSetup(n_nodes=10)
        data = weather_dataset(setup, seed=1, length=40)
        assert data.n_nodes == 10
        assert data.length == 40

    def test_seed_determinism(self):
        setup = NetworkSetup(n_nodes=5)
        a = random_walk_dataset(setup, 1, seed=4)
        b = random_walk_dataset(setup, 1, seed=4)
        assert (a.values == b.values).all()


class TestSweepContainers:
    def test_point_statistics(self):
        point = SweepPoint(x=1.0, samples=[2.0, 4.0])
        assert point.mean == 3.0
        assert point.std == pytest.approx(math.sqrt(2))

    def test_single_sample_std_zero(self):
        assert SweepPoint(x=0.0, samples=[5.0]).std == 0.0

    def test_series_accessors(self):
        series = Series("s", "x", "y")
        series.add(1.0, [1.0])
        series.add(2.0, [3.0, 5.0])
        assert series.xs == [1.0, 2.0]
        assert series.means == [1.0, 4.0]
        assert series.point_at(2.0).mean == 4.0
        with pytest.raises(KeyError):
            series.point_at(9.0)

    def test_repeat_runs_distinct_seeds(self):
        seen = []
        repeat(lambda seed: seen.append(seed) or 0.0, repetitions=3, base_seed=5)
        assert len(set(seen)) == 3

    def test_repeat_requires_positive(self):
        with pytest.raises(ValueError):
            repeat(lambda seed: 0.0, repetitions=0, base_seed=1)
