"""Integration tests: the qualitative shape of every §6 result.

These run the real experiment code at reduced scale (fewer nodes,
repetitions, and sweep points) and assert the *directional* claims of
each figure/table — who wins, what is monotone, where things flatten —
not the paper's absolute numbers.  The full-scale versions live in
``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.experiments.harness import NetworkSetup
from repro.experiments.savings import figure10_lifetime, table3_savings
from repro.experiments.sensitivity import (
    figure6_vary_classes,
    figure7_vary_message_loss,
    figure8_vary_cache_size,
    figure9_vary_transmission_range,
)
from repro.experiments.weather_experiments import (
    figure11_vary_threshold,
    figure12_estimation_error,
    figure13_spurious_representatives,
    run_maintenance_experiment,
)

#: A reduced network that keeps each discovery run fast.
SMALL = NetworkSetup(n_nodes=40)


class TestFigure6Shape:
    def test_k1_elects_single_representative_and_size_plateaus(self):
        series = figure6_vary_classes(
            classes=(1, 5, 40), repetitions=2, setup=SMALL
        )
        assert series.point_at(1).mean == pytest.approx(1.0)
        # size grows with K but far sub-linearly at K = N
        assert series.point_at(5).mean > series.point_at(1).mean
        assert series.point_at(40).mean < 40 * 0.8


class TestFigure7Shape:
    def test_size_grows_with_loss(self):
        series = figure7_vary_message_loss(
            losses=(0.0, 0.5, 0.95), repetitions=2, setup=SMALL
        )
        means = series.means
        assert means[0] == pytest.approx(1.0)
        assert means[0] < means[1] < means[2]
        # extreme loss degenerates to (almost) everyone representing itself
        assert means[2] > 0.9 * SMALL.n_nodes


class TestFigure8Shape:
    def test_model_aware_beats_round_robin_at_mid_cache(self):
        results = figure8_vary_cache_size(
            cache_sizes=(400, 1100), repetitions=2, setup=SMALL, n_classes=5
        )
        aware = results["model-aware"]
        robin = results["round-robin"]
        # at the mid-size cache the model-aware manager needs
        # substantially fewer representatives (Figure 8's gap)
        assert aware.point_at(1100).mean < robin.point_at(1100).mean

    def test_policies_tie_when_cache_is_tiny(self):
        results = figure8_vary_cache_size(
            cache_sizes=(200,), repetitions=2, setup=SMALL, n_classes=5
        )
        aware = results["model-aware"].point_at(200).mean
        robin = results["round-robin"].point_at(200).mean
        assert aware == pytest.approx(robin, rel=0.4)


class TestFigure9Shape:
    def test_size_flattens_beyond_07(self):
        results = figure9_vary_transmission_range(
            ranges=(0.2, 0.7, 1.4), classes=(1,), repetitions=2, setup=SMALL
        )
        series = results[1]
        short, knee, full = series.means
        assert short > knee          # short range needs more reps
        assert knee == pytest.approx(full, abs=max(2.0, 0.3 * knee))


class TestTable3Shape:
    @pytest.fixture(scope="class")
    def result(self):
        return table3_savings(
            areas=(0.01, 0.5),
            ranges=(0.2, 0.7),
            classes=(1, 40),
            n_queries=40,
            setup=SMALL,
        )

    def test_savings_grow_with_query_area(self, result):
        for reach in (0.2, 0.7):
            for k in (1, 40):
                small = result.cell(0.01, reach, k).savings
                large = result.cell(0.5, reach, k).savings
                assert large > small

    def test_savings_grow_with_transmission_range(self, result):
        for k in (1, 40):
            short = result.cell(0.5, 0.2, k).savings
            long = result.cell(0.5, 0.7, k).savings
            assert long > short

    def test_fewer_classes_more_savings(self, result):
        low_k = result.cell(0.5, 0.7, 1).savings
        high_k = result.cell(0.5, 0.7, 40).savings
        assert low_k > high_k

    def test_headline_magnitude(self, result):
        """The paper's best cell is ~91%; ours must be the same order."""
        assert result.cell(0.5, 0.7, 1).savings > 0.6


class TestFigure10Shape:
    """Shortened-horizon lifetime run (the 10k-query version is
    ``benchmarks/bench_fig10_lifetime.py``).

    Both the network size (rep generations must be a small fraction of
    the population) and the battery (training and maintenance must
    amortize) need the paper's scale — N=100, 500 transmissions — so
    only the horizon is reduced here.
    """

    @pytest.fixture(scope="class")
    def result(self):
        return figure10_lifetime(n_queries=7000, seed=2)

    def test_regular_holds_then_collapses(self, result):
        early = result.regular.samples[:1000]
        late = result.regular.samples[5000:7000]
        assert sum(early) / len(early) > 0.9
        assert sum(late) / len(late) < 0.35

    def test_snapshot_declines_gradually_and_outlives(self, result):
        late_regular = sum(result.regular.samples[5000:7000]) / 2000
        late_snapshot = sum(result.snapshot.samples[5000:7000]) / 2000
        assert late_snapshot > late_regular
        # the headline: area under the snapshot curve is larger
        assert result.area_gain > 1.0


class TestFigure11Shape:
    def test_size_falls_with_threshold(self):
        series = figure11_vary_threshold(
            thresholds=(0.1, 1.0, 10.0), repetitions=2, setup=SMALL
        )
        sizes = series.means
        assert sizes[0] > sizes[1] > sizes[2]
        assert sizes[2] <= 0.15 * SMALL.n_nodes  # a handful at T=10


class TestFigure12Shape:
    def test_realized_error_below_threshold(self):
        series = figure12_estimation_error(
            thresholds=(0.5, 2.0, 10.0), repetitions=2, setup=SMALL
        )
        for point in series.points:
            assert point.mean < point.x


class TestFigure13Shape:
    def test_spurious_small_and_vanishing_at_extreme_loss(self):
        results = figure13_spurious_representatives(
            losses=(0.0, 0.5, 0.95),
            repetitions=2,
            setup=SMALL.with_(transmission_range=0.3, threshold=0.1),
        )
        spurious = results["spurious"]
        total = results["total"]
        assert spurious.point_at(0.0).mean == 0.0
        # spurious representatives stay a small fraction of the total
        for s_point, t_point in zip(spurious.points, total.points):
            assert s_point.mean <= max(3.0, 0.25 * t_point.mean)
        # near-total loss: Rule-2 rarely runs, so spurious claims vanish
        assert spurious.point_at(0.95).mean <= spurious.point_at(0.5).mean + 1.0


class TestFigures14And15Shape:
    @pytest.fixture(scope="class")
    def runs(self):
        setup = NetworkSetup(n_nodes=40, threshold=0.1, snoop_probability=0.05)
        return {
            reach: run_maintenance_experiment(
                reach, series_length=800, setup=setup, seed=5
            )
            for reach in (0.2, 0.7)
        }

    def test_sizes_sampled_every_update(self, runs):
        for run in runs.values():
            assert len(run.snapshot_sizes) >= 3

    def test_short_range_needs_more_representatives(self, runs):
        assert runs[0.2].mean_size > runs[0.7].mean_size

    def test_messages_below_the_bound_of_six(self, runs):
        for run in runs.values():
            assert 0.0 < run.mean_messages <= 6.0

    def test_longer_range_costs_more_messages(self, runs):
        assert runs[0.7].mean_messages > runs[0.2].mean_messages
