"""Tests for the textual reporting helpers."""

from __future__ import annotations

from repro.experiments.harness import Series
from repro.experiments.reporting import (
    format_multi_series,
    format_rows,
    format_series,
    format_table3,
)
from repro.experiments.savings import Table3Cell, Table3Result


def sample_series(label: str = "demo") -> Series:
    series = Series(label, "K", "n1")
    series.add(1, [1.0, 1.0])
    series.add(10, [18.0, 22.0])
    return series


class TestFormatRows:
    def test_alignment_and_title(self):
        text = format_rows(("a", "bb"), [(1, 2), (30, 40)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5


class TestFormatSeries:
    def test_contains_means_and_spread(self):
        text = format_series(sample_series(), title="Figure X")
        assert "Figure X" in text
        assert "20.00" in text
        assert "±" in text

    def test_default_title_is_label(self):
        assert format_series(sample_series("lbl")).splitlines()[0] == "lbl"


class TestFormatMultiSeries:
    def test_one_column_per_label(self):
        text = format_multi_series(
            {"a": sample_series(), "b": sample_series()}, "K", title="Combined"
        )
        header = text.splitlines()[1]
        assert "a" in header and "b" in header


class TestFormatTable3:
    def test_paper_layout(self):
        result = Table3Result()
        for area in (0.01, 0.1):
            for reach in (0.2, 0.7):
                for k in (1, 100):
                    result.cells[(area, reach, k)] = Table3Cell(
                        query_area=area,
                        transmission_range=reach,
                        n_classes=k,
                        savings=0.5,
                        n_queries=10,
                        snapshot_size=5,
                    )
        text = format_table3(result)
        assert "W^2 = 0.01" in text
        assert "K=1 r=0.2" in text
        assert "50%" in text
