"""Seed derivation and process-parallel execution of the harness.

The acceptance bar for ``REPRO_JOBS`` is *sample-for-sample* equality:
a sweep run on four worker processes must return exactly the numbers
the serial run returns, because the per-repetition seed list depends
only on ``(base_seed, repetitions)`` and never on scheduling.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments.harness import (
    NetworkSetup,
    derive_seeds,
    parallel_map,
    repeat,
)
from repro.experiments import sensitivity


class TestDeriveSeeds:
    def test_deterministic(self):
        assert derive_seeds(6, 10) == derive_seeds(6, 10)

    def test_distinct_within_base(self):
        seeds = derive_seeds(6, 1000)
        assert len(set(seeds)) == 1000

    def test_no_collision_across_adjacent_bases(self):
        """The old ``base*1000 + i`` scheme collided here; this must not.

        Figure 6's K=1 and K=2 points use bases 6001 and 6002 — with
        the multiplicative scheme any repetition count above 1000 made
        point 1's later seeds overlap point 2's early ones.
        """
        a = set(derive_seeds(6001, 2000))
        b = set(derive_seeds(6002, 2000))
        assert not a & b

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            derive_seeds(1, 0)


class TestParallelMap:
    def test_serial_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        # lambdas are fine serially — nothing is pickled
        assert parallel_map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]

    def test_parallel_matches_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "1")
        serial = parallel_map(math.sqrt, list(range(20)))
        monkeypatch.setenv("REPRO_JOBS", "4")
        parallel = parallel_map(math.sqrt, list(range(20)))
        assert parallel == serial

    def test_invalid_jobs_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError):
            parallel_map(abs, [1])

    def test_empty_items(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert parallel_map(abs, []) == []


#: A small-but-real discovery configuration; big enough that an election
#: actually happens, small enough to run 8 times in a test.
_SMALL = NetworkSetup(
    n_nodes=12,
    transmission_range=math.sqrt(2.0),
    train_duration=5.0,
    election_time=20.0,
)


class TestRepeatParallelEquivalence:
    def test_repeat_sample_for_sample(self, monkeypatch):
        from functools import partial

        fn = partial(sensitivity._snapshot_size, _SMALL, 2)
        monkeypatch.setenv("REPRO_JOBS", "1")
        serial = repeat(fn, repetitions=4, base_seed=6002)
        monkeypatch.setenv("REPRO_JOBS", "4")
        parallel = repeat(fn, repetitions=4, base_seed=6002)
        assert parallel == serial

    def test_figure_sweep_sample_for_sample(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "1")
        serial = sensitivity.figure6_vary_classes(
            classes=(1, 3), repetitions=2, setup=_SMALL
        )
        monkeypatch.setenv("REPRO_JOBS", "4")
        parallel = sensitivity.figure6_vary_classes(
            classes=(1, 3), repetitions=2, setup=_SMALL
        )
        assert parallel.xs == serial.xs
        for serial_point, parallel_point in zip(serial.points, parallel.points):
            assert parallel_point.samples == serial_point.samples


# ----------------------------------------------------------------------
# no bleed-through across repetitions
# ----------------------------------------------------------------------


def _noop(record):
    """Module-level (picklable) trace callback."""


def _delivered_protocol_messages(seed: int) -> float:
    """One discovery run, counted through a fresh trace subscription.

    Module-level so ``REPRO_JOBS`` can pickle it.  Regression target:
    per-subscription delivery counters used to survive re-subscription
    of an equal callback, so a second repetition reported the first
    repetition's traffic on top of its own.
    """
    from repro.experiments.harness import build_runtime, random_walk_dataset

    dataset = random_walk_dataset(_SMALL, 2, seed)
    runtime = build_runtime(_SMALL, dataset, seed)
    subscription = runtime.simulator.trace.subscribe("message.sent", _noop)
    runtime.train(duration=_SMALL.train_duration)
    runtime.run_election()
    count = float(subscription.deliveries)
    subscription.cancel()
    assert count == runtime.stats.total_sent()
    return count


class TestRepeatNoBleedThrough:
    def test_two_sequential_repeats_report_independent_counts(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "1")
        first = repeat(_delivered_protocol_messages, repetitions=3, base_seed=6002)
        second = repeat(_delivered_protocol_messages, repetitions=3, base_seed=6002)
        assert all(count > 0 for count in first)
        # Same seeds, fresh subscriptions: identical counts, no carryover.
        assert second == first

    def test_parallel_repeats_match_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "1")
        serial = repeat(_delivered_protocol_messages, repetitions=4, base_seed=6002)
        monkeypatch.setenv("REPRO_JOBS", "2")
        parallel = repeat(_delivered_protocol_messages, repetitions=4, base_seed=6002)
        assert parallel == serial
        assert repeat(
            _delivered_protocol_messages, repetitions=4, base_seed=6002
        ) == serial
