"""Every script under ``examples/`` runs to completion.

Each example is executed as a real subprocess (the way a reader would
run it), scaled down through the ``REPRO_EXAMPLE_*`` environment knobs
the scripts expose, and must exit 0 with its headline output intact.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES = os.path.join(REPO, "examples")

#: script -> (env knobs, a fragment its stdout must contain)
CASES = {
    "quickstart.py": (
        {"REPRO_EXAMPLE_NODES": "40"},
        "snapshot execution",
    ),
    "multi_resolution.py": (
        {"REPRO_EXAMPLE_NODES": "40"},
        "multi-resolution snapshot family",
    ),
    "network_lifetime.py": (
        {"REPRO_EXAMPLE_QUERIES": "240"},
        "area under coverage curve",
    ),
    "volatile_deployment.py": (
        {"REPRO_EXAMPLE_NODES": "30"},
        "mean coverage",
    ),
    "weather_monitoring.py": (
        {"REPRO_EXAMPLE_NODES": "40"},
        "tighter thresholds",
    ),
}


def test_every_example_has_a_smoke_case():
    scripts = {
        name for name in os.listdir(EXAMPLES) if name.endswith(".py")
    }
    assert scripts == set(CASES), (
        "examples/ and the smoke matrix drifted apart — add the new "
        "script (with a scale knob) to CASES"
    )


@pytest.mark.parametrize("script", sorted(CASES))
def test_example_runs_clean(script):
    knobs, fragment = CASES[script]
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"), **knobs)
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, script)],
        capture_output=True, text=True, timeout=300, env=env,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert fragment in result.stdout
