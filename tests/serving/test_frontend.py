"""Tests for the query serving front-end."""

from __future__ import annotations

import pytest

from repro.query.ast import Aggregate, Query
from repro.query.spatial import Everywhere, Rect
from repro.serving import AdmissionRejected, QueryFrontEnd
from tests.conftest import make_runtime


def served_runtime(seed: int = 11):
    runtime = make_runtime(n_nodes=20, n_classes=2, seed=seed)
    runtime.train(duration=10)
    runtime.run_election()
    return runtime


def snapshot_avg(region=None) -> Query:
    return Query(
        region=Everywhere() if region is None else region,
        aggregate=Aggregate.AVG,
        use_snapshot=True,
    )


class TestValidation:
    def test_bounds_must_be_positive(self):
        runtime = served_runtime()
        with pytest.raises(ValueError):
            QueryFrontEnd(runtime, max_queue=0)
        with pytest.raises(ValueError):
            QueryFrontEnd(runtime, batch_max=0)


class TestAdmission:
    def test_queue_full_rejection(self):
        runtime = served_runtime()
        frontend = QueryFrontEnd(runtime, max_queue=2, cache=False)
        # the dispatcher is not started, so the queue only fills
        futures = [frontend.submit(snapshot_avg()) for _ in range(2)]
        with pytest.raises(AdmissionRejected) as rejected:
            frontend.submit(snapshot_avg())
        assert rejected.value.reason == "queue"
        assert frontend.stats()["rejected_queue"] == 1
        frontend.start()
        assert all(f.result(timeout=10).result is not None for f in futures)
        frontend.stop()

    def test_cost_rejection(self):
        runtime = served_runtime()
        with QueryFrontEnd(runtime, max_cost=0.01) as frontend:
            with pytest.raises(AdmissionRejected) as rejected:
                frontend.submit(snapshot_avg())
            assert rejected.value.reason == "cost"
            assert frontend.stats()["rejected_cost"] == 1

    def test_generous_budget_admits(self):
        runtime = served_runtime()
        with QueryFrontEnd(runtime, max_cost=1e9) as frontend:
            served = frontend.submit(snapshot_avg()).result(timeout=10)
        assert served.estimate.total_transmissions <= 1e9

    def test_dead_sink_surfaces_in_the_future(self):
        runtime = served_runtime()
        with QueryFrontEnd(runtime, cache=False) as frontend:
            future = frontend.submit(snapshot_avg(), sink=10_000)
            with pytest.raises(ValueError, match="not alive"):
                future.result(timeout=10)


class TestBatchedDispatch:
    def test_same_sink_batch_shares_one_tree(self):
        runtime = served_runtime()
        frontend = QueryFrontEnd(runtime, charge_energy=False)
        # distinct regions => distinct cache keys => every query executes
        regions = [Rect(0.0, 0.0, 0.2 * (i + 1), 1.0) for i in range(5)]
        futures = [frontend.submit(snapshot_avg(region)) for region in regions]
        frontend.start()
        results = [future.result(timeout=10) for future in futures]
        frontend.stop()
        assert all(not served.cached for served in results)
        # all five were queued before the dispatcher woke: one batch,
        # one sink group, one flooded tree
        assert frontend.stats()["trees_built"] == 1

    def test_default_sink_is_smallest_alive(self):
        runtime = served_runtime()
        with QueryFrontEnd(runtime, charge_energy=False) as frontend:
            served = frontend.submit(snapshot_avg()).result(timeout=10)
        assert served.result.sink == min(runtime.alive_ids())

    def test_duplicate_in_one_batch_served_from_cache(self):
        runtime = served_runtime()
        frontend = QueryFrontEnd(runtime, charge_energy=False)
        query = snapshot_avg()
        futures = [frontend.submit(query) for _ in range(4)]
        frontend.start()
        results = [future.result(timeout=10) for future in futures]
        frontend.stop()
        assert sum(1 for served in results if not served.cached) == 1
        assert sum(1 for served in results if served.cached) == 3
        answers = {served.result.aggregate_value for served in results}
        assert len(answers) == 1


class TestWorkloads:
    def test_concurrent_clients_all_complete(self):
        runtime = served_runtime()
        queries = [
            snapshot_avg(Rect(0.0, 0.0, 0.25 * (1 + i % 4), 1.0)) for i in range(24)
        ]
        with QueryFrontEnd(runtime, charge_energy=False) as frontend:
            results = frontend.run_workload(queries, clients=6)
            stats = frontend.stats()
        assert len(results) == 24
        assert all(served.result.rounds >= 1 for served in results)
        assert stats["admitted"] == 24
        assert stats["served"] == 24
        assert stats["cache_hits"] + stats["cache_misses"] == 24
        assert stats["cache_hits"] >= 24 - 4  # only 4 distinct templates
        assert stats["p99_seconds"] >= stats["p50_seconds"] >= 0.0

    def test_cache_off_executes_everything(self):
        runtime = served_runtime()
        query = snapshot_avg()
        with QueryFrontEnd(runtime, cache=False, charge_energy=False) as frontend:
            results = frontend.run_workload([query] * 6, clients=3)
        assert all(not served.cached for served in results)

    def test_regular_mode_results_never_cached(self):
        runtime = served_runtime()
        # a demoted query (threshold tighter than the snapshot) runs
        # regularly and must not be replayed from the cache
        query = Query(region=Everywhere(), use_snapshot=True, snapshot_threshold=1e-6)
        with QueryFrontEnd(runtime, charge_energy=False) as frontend:
            first = frontend.submit(query).result(timeout=10)
            second = frontend.submit(query).result(timeout=10)
        assert first.plan.needs_election
        assert not first.result.query.use_snapshot
        assert not first.cached and not second.cached
        assert len(frontend.cache) == 0


class TestLifecycle:
    def test_context_manager_starts_and_stops(self):
        runtime = served_runtime()
        frontend = QueryFrontEnd(runtime, charge_energy=False)
        with frontend:
            assert frontend._dispatcher is not None
            frontend.submit(snapshot_avg()).result(timeout=10)
        assert frontend._dispatcher is None

    def test_stop_without_drain_cancels_pending(self):
        runtime = served_runtime()
        frontend = QueryFrontEnd(runtime, charge_energy=False)
        future = frontend.submit(snapshot_avg())  # never started
        frontend.stop(drain=False)
        assert future.cancelled()

    def test_start_is_idempotent(self):
        runtime = served_runtime()
        frontend = QueryFrontEnd(runtime, charge_energy=False)
        frontend.start()
        first = frontend._dispatcher
        frontend.start()
        assert frontend._dispatcher is first
        frontend.stop()
