"""Tests for the epoch-keyed result cache."""

from __future__ import annotations

import pytest

from repro.serving.cache import EpochResultCache

V0 = (1, 0)
V1 = (2, 0)
V2 = (2, 3)


class TestValidation:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EpochResultCache(0)
        with pytest.raises(ValueError):
            EpochResultCache(-5)


class TestBasics:
    def test_miss_then_hit(self):
        cache = EpochResultCache()
        assert cache.get(V0, "k") is None
        cache.put(V0, "k", 41)
        assert cache.get(V0, "k") == 41
        assert cache.hits == 1
        assert cache.misses == 1

    def test_version_property_tracks_last_sync(self):
        cache = EpochResultCache()
        assert cache.version is None
        cache.put(V0, "k", 1)
        assert cache.version == V0
        cache.get(V1, "k")
        assert cache.version == V1

    def test_clear_drops_entries_keeps_counters(self):
        cache = EpochResultCache()
        cache.put(V0, "a", 1)
        cache.get(V0, "a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1
        # the version survives a clear: entries are gone, not stale
        assert cache.version == V0


class TestLRU:
    def test_eviction_beyond_capacity(self):
        cache = EpochResultCache(capacity=2)
        cache.put(V0, "a", 1)
        cache.put(V0, "b", 2)
        cache.put(V0, "c", 3)
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.get(V0, "a") is None  # oldest went first

    def test_get_refreshes_recency(self):
        cache = EpochResultCache(capacity=2)
        cache.put(V0, "a", 1)
        cache.put(V0, "b", 2)
        cache.get(V0, "a")  # now "b" is least recent
        cache.put(V0, "c", 3)
        assert cache.get(V0, "a") == 1
        assert cache.get(V0, "b") is None


class TestVersioning:
    def test_newer_version_invalidates_everything(self):
        cache = EpochResultCache()
        cache.put(V0, "a", 1)
        cache.put(V0, "b", 2)
        assert cache.get(V1, "a") is None
        assert len(cache) == 0
        assert cache.invalidations == 1
        assert cache.version == V1

    def test_reelection_component_compares_after_epoch(self):
        cache = EpochResultCache()
        cache.put(V1, "a", 1)
        assert cache.get(V2, "a") is None  # (2, 3) > (2, 0): flushed
        assert cache.invalidations == 1

    def test_stale_reader_misses_without_flushing(self):
        cache = EpochResultCache()
        cache.put(V1, "a", 1)
        assert cache.get(V0, "a") is None
        assert cache.misses == 1
        # the current-version entry survived the stale probe
        assert cache.get(V1, "a") == 1

    def test_stale_writer_is_dropped(self):
        cache = EpochResultCache()
        cache.put(V1, "a", 1)
        cache.put(V0, "a", 999)  # computed against a dead structure
        assert cache.get(V1, "a") == 1

    def test_same_version_put_overwrites(self):
        cache = EpochResultCache()
        cache.put(V0, "a", 1)
        cache.put(V0, "a", 2)
        assert cache.get(V0, "a") == 2
        assert cache.invalidations == 0
