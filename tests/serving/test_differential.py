"""Differential proof of epoch-cache correctness.

Two guarantees back the serving layer's result reuse:

* **Within an epoch** a cached snapshot answer is *field-identical* to
  what a fresh execution would have produced: on a lossless radio the
  flood consumes no RNG draws and execution does not advance simulated
  time, so twin runtimes (same seed, same training, same election)
  answer the same query with the same bits whether or not a cache sits
  in between.
* **Across an epoch bump** (a re-election) the cache invalidates: the
  first request after the bump misses, re-executes against the new
  representative structure, and re-primes the cache under the new
  version.
"""

from __future__ import annotations

from repro.query.ast import Aggregate, Query
from repro.query.spatial import Everywhere, Rect
from repro.serving import QueryFrontEnd
from tests.conftest import make_runtime

RESULT_FIELDS = (
    "query",
    "sink",
    "responders",
    "routers",
    "reports",
    "matching_all",
    "matching_alive",
    "aggregate_value",
    "rounds",
)


def result_fields(result) -> dict:
    return {name: getattr(result, name) for name in RESULT_FIELDS}


def twin_runtime(seed: int = 17):
    runtime = make_runtime(n_nodes=24, n_classes=3, seed=seed)
    runtime.train(duration=10)
    runtime.run_election()
    return runtime


QUERIES = [
    Query(region=Everywhere(), aggregate=Aggregate.AVG, use_snapshot=True),
    Query(region=Rect(0.0, 0.0, 0.6, 1.0), aggregate=Aggregate.MAX, use_snapshot=True),
    Query(region=Rect(0.2, 0.2, 0.9, 0.9), use_snapshot=True),  # drill-through
]


class TestWithinEpoch:
    def test_cached_results_field_identical_to_fresh_execution(self):
        """Acceptance proof: cache on == cache off, field by field."""
        cached_rt, fresh_rt = twin_runtime(), twin_runtime()
        sink = min(cached_rt.alive_ids())
        with QueryFrontEnd(cached_rt, charge_energy=False) as with_cache, \
                QueryFrontEnd(fresh_rt, cache=False, charge_energy=False) as no_cache:
            for query in QUERIES:
                first = with_cache.submit(query, sink=sink).result(timeout=10)
                replay = with_cache.submit(query, sink=sink).result(timeout=10)
                fresh1 = no_cache.submit(query, sink=sink).result(timeout=10)
                fresh2 = no_cache.submit(query, sink=sink).result(timeout=10)
                assert not first.cached
                assert replay.cached, "second identical submit must hit"
                assert not fresh1.cached and not fresh2.cached
                # the replay is the very object the first execution made
                assert result_fields(replay.result) == result_fields(first.result)
                # and a cache-free twin produces the same fields
                assert result_fields(replay.result) == result_fields(fresh2.result)
                assert result_fields(fresh1.result) == result_fields(fresh2.result)

    def test_cached_version_matches_runtime(self):
        runtime = twin_runtime()
        with QueryFrontEnd(runtime, charge_energy=False) as frontend:
            served = frontend.submit(QUERIES[0]).result(timeout=10)
        assert served.version == runtime.structure_version()


class TestAcrossEpochBump:
    def test_reelection_invalidates_and_reprimes(self):
        runtime = twin_runtime()
        query = QUERIES[0]
        with QueryFrontEnd(runtime, charge_energy=False) as frontend:
            warm = frontend.submit(query).result(timeout=10)
            assert frontend.submit(query).result(timeout=10).cached

            before = runtime.structure_version()
            runtime.run_election()  # the protocol epoch bumps
            after = runtime.structure_version()
            assert after > before
            assert runtime.current_epoch > warm.version[0]

            post = frontend.submit(query).result(timeout=10)
            assert not post.cached, "epoch bump must invalidate the cache"
            assert post.version == after
            assert frontend.cache.invalidations == 1

            # the cache re-primes under the new version
            replay = frontend.submit(query).result(timeout=10)
            assert replay.cached
            assert replay.version == after

    def test_stats_count_the_invalidation(self):
        runtime = twin_runtime()
        query = QUERIES[1]
        with QueryFrontEnd(runtime, charge_energy=False) as frontend:
            frontend.submit(query).result(timeout=10)
            runtime.run_election()
            frontend.submit(query).result(timeout=10)
            stats = frontend.stats()
        assert stats["cache_invalidations"] == 1
        assert stats["cache_misses"] == 2
