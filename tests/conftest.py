"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ProtocolConfig
from repro.core.runtime import SnapshotRuntime
from repro.data.random_walk import RandomWalkConfig, generate_random_walk
from repro.data.series import Dataset
from repro.network.topology import Topology, grid_topology, uniform_random_topology
from repro.simulation.engine import Simulator


@pytest.fixture
def simulator() -> Simulator:
    """A fresh deterministic simulator."""
    return Simulator(seed=1234)


@pytest.fixture
def rng() -> np.random.Generator:
    """A seeded generator for test-local randomness."""
    return np.random.default_rng(98765)


@pytest.fixture
def small_topology() -> Topology:
    """A 3x3 grid where everyone hears everyone."""
    return grid_topology(3, transmission_range=2.0)


def make_runtime(
    n_nodes: int = 20,
    n_classes: int = 2,
    transmission_range: float = 2.0,
    threshold: float = 1.0,
    seed: int = 7,
    length: int = 120,
    **runtime_kwargs,
) -> SnapshotRuntime:
    """Convenience builder used across integration tests."""
    data_rng = np.random.default_rng(seed)
    dataset, _ = generate_random_walk(
        RandomWalkConfig(n_nodes=n_nodes, n_classes=n_classes, length=length), data_rng
    )
    topology = uniform_random_topology(n_nodes, transmission_range, data_rng)
    return SnapshotRuntime(
        topology,
        dataset,
        ProtocolConfig(threshold=threshold),
        seed=seed,
        **runtime_kwargs,
    )


@pytest.fixture
def trained_runtime() -> SnapshotRuntime:
    """A 20-node network that has completed the §6.1 warm-up."""
    runtime = make_runtime()
    runtime.train(duration=10)
    return runtime


@pytest.fixture
def constant_dataset() -> Dataset:
    """Nine nodes with constant, pairwise-distinct measurement levels."""
    values = [[float(10 * (node + 1))] * 50 for node in range(9)]
    return Dataset(values)
