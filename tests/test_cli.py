"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.nodes == 100
        assert args.threshold == 1.0

    def test_query_options(self):
        args = build_parser().parse_args(
            ["query", "SELECT loc FROM sensors", "--sink", "3", "--plan"]
        )
        assert args.sql == "SELECT loc FROM sensors"
        assert args.sink == 3
        assert args.plan

    def test_experiment_id(self):
        args = build_parser().parse_args(["experiment", "fig6"])
        assert args.id == "fig6"

    def test_serve_options(self):
        args = build_parser().parse_args(
            ["serve", "--queries", "100", "--clients", "4", "--no-cache",
             "--max-cost", "500", "--sink", "2"]
        )
        assert args.queries == 100
        assert args.clients == 4
        assert args.no_cache
        assert args.max_cost == 500.0
        assert args.sink == 2

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.queries == 500
        assert args.clients == 8
        assert not args.no_cache
        assert args.max_cost is None

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "--shards", "4", "-n", "20000", "--mode", "inline"]
        )
        assert args.shards == 4
        assert args.nodes == 20000
        assert args.mode == "inline"
        assert args.range is None  # auto degree-12 radius

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.shards == 4
        assert args.nodes == 2000
        assert args.mode == "process"
        assert not args.digest

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_run_sharded(self, capsys):
        code = main(
            ["run", "-n", "40", "--classes", "2", "--shards", "2",
             "--duration", "4", "--digest"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "shards : 2 x process" in out
        assert "messages sent" in out
        assert "digest :" in out

    def test_demo_runs(self, capsys):
        code = main(["demo", "--nodes", "20", "--classes", "2", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "snapshot:" in out
        assert "representatives" in out

    def test_query_aggregate(self, capsys):
        code = main(
            [
                "query",
                "SELECT AVG(value) FROM sensors USE SNAPSHOT",
                "--nodes", "20", "--classes", "2", "--seed", "1", "--sink", "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "answer:" in out
        assert "coverage:" in out

    def test_query_with_planner(self, capsys):
        code = main(
            [
                "query",
                "SELECT loc, value FROM sensors",
                "--plan", "--nodes", "20", "--classes", "2", "--seed", "1",
                "--sink", "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "plan:" in out
        assert "ran :" in out

    def test_query_syntax_error(self, capsys):
        code = main(["query", "DROP TABLE sensors", "--nodes", "20"])
        assert code == 2
        assert "syntax error" in capsys.readouterr().err

    def test_serve_runs(self, capsys):
        code = main(
            ["serve", "--nodes", "20", "--classes", "2", "--seed", "1",
             "--queries", "40", "--clients", "4", "--templates", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "served : 40 queries" in out
        assert "qps    :" in out
        assert "cache  :" in out

    def test_serve_without_cache(self, capsys):
        code = main(
            ["serve", "--nodes", "20", "--classes", "2", "--seed", "1",
             "--queries", "20", "--clients", "2", "--no-cache"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "(cache off)" in out
        assert "0/20 served cached" in out

    def test_unknown_experiment(self, capsys):
        code = main(["experiment", "fig99"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err
