"""The paper's running example (Figures 3 and 4), replayed exactly.

Section 5 walks through an 8-node election whose model-evaluation phase
produces the candidate lists

    Cand_1={N2}         Cand_2={}
    Cand_3={N4,N6}      Cand_4={N1,N2,N3,N5}
    Cand_5={N8}         Cand_6={N7}
    Cand_7={N8}         Cand_8={}

and whose refinement cascade ends with representatives {N3, N4, N7}:
N4 representing {N1, N2, N5}, N3 representing {N6}, N7 representing
{N8}.  We pin the candidate lists by scripting each node's model store
and assert both the initial selection (Figure 3) and the final
refinement outcome (Figure 4), including the intermediate rule firings
the paper narrates.

Node ids here are 0-based: paper node ``N_k`` is node ``k-1``.
"""

from __future__ import annotations

import pytest

from repro.core.config import ProtocolConfig
from repro.core.election import ElectionCoordinator
from repro.core.protocol import ProtocolNode
from repro.core.snapshot import SnapshotView
from repro.core.status import NodeMode
from repro.network.radio import Radio
from repro.network.topology import Topology
from repro.simulation.engine import Simulator

#: paper candidate lists, translated to 0-based ids.
CAN_REPRESENT = {
    0: {1},
    1: set(),
    2: {3, 5},
    3: {0, 1, 2, 4},
    4: {7},
    5: {6},
    6: {7},
    7: set(),
}


class ScriptedStore:
    """A model store whose representability answers are fixed."""

    def __init__(self, node_id: int) -> None:
        self._can = CAN_REPRESENT[node_id]

    def can_represent(self, neighbor_id, neighbor_value, own_value, metric, threshold):
        return neighbor_id in self._can

    def estimate(self, neighbor_id, own_value, measurement_id=0):
        return 0.0 if neighbor_id in self._can else None

    def record(self, neighbor_id, own_value, neighbor_value, measurement_id=0):
        return "append"


@pytest.fixture
def election():
    simulator = Simulator(seed=0)
    # everyone within range of everyone
    topology = Topology([(0.1 * i, 0.0) for i in range(8)], ranges=2.0)
    radio = Radio(simulator, topology)
    radio.populate()
    config = ProtocolConfig(threshold=1.0)
    nodes = {
        node_id: ProtocolNode(
            node_id=node_id,
            radio=radio,
            store=ScriptedStore(node_id),
            config=config,
            value_fn=lambda: 0.0,
            location=topology.position(node_id),
        )
        for node_id in topology.node_ids
    }
    coordinator = ElectionCoordinator(simulator, nodes, config)
    return simulator, radio, nodes, coordinator


def run_election(simulator, coordinator):
    coordinator.start_round(at=simulator.now)
    simulator.run_until(simulator.now + coordinator.settle_delay)


class TestInitialSelection:
    def test_initial_representatives_match_figure3(self, election):
        simulator, radio, nodes, coordinator = election
        coordinator.start_round(at=0.0)
        # run just past the selection phase, before refinement begins
        spacing = coordinator.config.phase_spacing
        simulator.run_until(3 * spacing - spacing / 10)
        # Figure 3 arrows: N4 -> {N1, N2, N3, N5}; N3 -> {N4, N6};
        # N6 -> {N7}; N7 -> {N8} (0-based below).
        assert nodes[0].representative_id == 3
        assert nodes[1].representative_id == 3   # longest list wins over N1's
        assert nodes[2].representative_id == 3
        assert nodes[4].representative_id == 3
        assert nodes[3].representative_id == 2
        assert nodes[5].representative_id == 2
        assert nodes[6].representative_id == 5
        # N8 ties between N5 and N7 (both lists length 1) -> largest id
        assert nodes[7].representative_id == 6
        assert set(nodes[3].represented) == {0, 1, 2, 4}
        assert set(nodes[2].represented) == {3, 5}


class TestRefinement:
    def test_final_snapshot_matches_figure4(self, election):
        simulator, radio, nodes, coordinator = election
        run_election(simulator, coordinator)
        view = SnapshotView.capture(nodes)
        assert set(view.representatives) == {2, 3, 6}
        # final member sets after the recalls
        assert set(nodes[3].represented) == {0, 1, 4}
        assert set(nodes[2].represented) == {5}
        assert set(nodes[6].represented) == {7}
        # modes
        for passive in (0, 1, 4, 5, 7):
            assert nodes[passive].mode is NodeMode.PASSIVE
        for active in (2, 3, 6):
            assert nodes[active].mode is NodeMode.ACTIVE

    def test_rule0_breaks_the_n3_n4_tie_toward_n4(self, election):
        simulator, radio, nodes, coordinator = election
        run_election(simulator, coordinator)
        # N4 (id 3) had the longer list and won Rule-0: it is ACTIVE and
        # recalled N3's representation of it.
        assert nodes[3].mode is NodeMode.ACTIVE
        assert 3 not in nodes[2].represented

    def test_rule2_recalls_are_mutual_cleanup(self, election):
        simulator, radio, nodes, coordinator = election
        run_election(simulator, coordinator)
        # N3 (id 2) became ACTIVE via N6's Rule-3 request and then
        # recalled its own election of N4: no node is represented by
        # another representative.
        view = SnapshotView.capture(nodes)
        for representative in view.representatives:
            rep_node = nodes[representative]
            assert rep_node.representative_id in (None, representative)

    def test_no_stale_claims_without_loss(self, election):
        simulator, radio, nodes, coordinator = election
        run_election(simulator, coordinator)
        audit = SnapshotView.capture(nodes).audit()
        assert audit.n_spurious == 0
        assert audit.stale_claims == ()

    def test_message_bound_of_table2(self, election):
        """At most five protocol messages per node in a lossless election."""
        simulator, radio, nodes, coordinator = election
        run_election(simulator, coordinator)
        assert radio.stats.max_protocol_messages_any_node() <= 5

    def test_every_passive_node_has_an_active_representative(self, election):
        simulator, radio, nodes, coordinator = election
        run_election(simulator, coordinator)
        for node in nodes.values():
            if node.mode is NodeMode.PASSIVE:
                rep = nodes[node.representative_id]
                assert rep.mode is NodeMode.ACTIVE
                assert node.node_id in rep.represented
