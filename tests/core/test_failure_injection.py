"""Failure injection: obstacles, asymmetric links, bursts of death.

The paper's motivating environment is hostile and volatile (§1); these
tests drive the protocol through the specific failure modes it is
designed around and check that the data-centric structure survives.
"""

from __future__ import annotations

import numpy as np
from repro.core.config import ProtocolConfig
from repro.core.runtime import SnapshotRuntime
from repro.core.status import NodeMode
from repro.data.series import Dataset
from repro.network.links import PerLinkLoss
from repro.network.topology import Topology


def correlated_runtime(n: int = 12, loss_model=None, battery=None, seed=3):
    """All-in-range nodes with strongly correlated ramps."""
    base = np.linspace(0.0, 30.0, 300)
    values = np.stack([base + 0.3 * i for i in range(n)])
    dataset = Dataset(values)
    topology = Topology([(0.08 * i, 0.0) for i in range(n)], ranges=2.0)
    kwargs = {}
    if loss_model is not None:
        kwargs["loss_model"] = loss_model
    return SnapshotRuntime(
        topology, dataset,
        ProtocolConfig(threshold=5.0, heartbeat_period=10.0),
        seed=seed, battery_capacity=battery, **kwargs,
    )


class TestObstacles:
    def test_blocked_pair_still_covered_via_other_representatives(self):
        """An obstacle between two specific nodes (the §3 example) must
        not leave either uncovered — they elect around it."""
        loss = PerLinkLoss(base=0.0)
        loss.block_link(0, 1)
        loss.block_link(1, 0)
        runtime = correlated_runtime(loss_model=loss)
        runtime.train(duration=10)
        view = runtime.run_election()
        covered = set(view.representatives)
        for rep in view.representatives:
            covered |= set(runtime.nodes[rep].represented)
        assert covered == set(range(12))

    def test_one_way_link_respected(self):
        """Node 1 can hear node 0 but not vice versa: node 0 can never
        learn it represents node 1 reliably — the protocol still
        terminates with everyone settled."""
        loss = PerLinkLoss(base=0.0)
        loss.block_link(1, 0)  # 1's transmissions never reach 0
        runtime = correlated_runtime(loss_model=loss)
        runtime.train(duration=10)
        runtime.run_election()
        for node in runtime.nodes.values():
            assert node.mode.settled


class TestMassDeath:
    def test_simultaneous_representative_deaths_heal(self):
        runtime = correlated_runtime(battery=300.0)
        runtime.train(duration=10)
        view = runtime.run_election()
        runtime.start_maintenance()
        for rep in view.representatives:
            runtime.radio.node(rep).battery.draw(1e9)
        # several maintenance rounds to re-elect / self-activate
        runtime.advance_to(runtime.now + 60)
        survivors = [n for n in runtime.nodes.values() if n.alive]
        assert survivors
        for node in survivors:
            assert node.mode.settled
            if node.mode is NodeMode.PASSIVE:
                rep = runtime.nodes[node.representative_id]
                assert rep.alive

    def test_network_of_one_survivor(self):
        runtime = correlated_runtime(battery=300.0)
        runtime.train(duration=10)
        runtime.run_election()
        runtime.start_maintenance()
        for node_id in range(1, 12):
            runtime.radio.node(node_id).battery.draw(1e9)
        runtime.advance_to(runtime.now + 40)
        lone = runtime.nodes[0]
        assert lone.alive
        view = runtime.snapshot()
        assert view.n_nodes == 1
        assert view.representatives == (0,)


class TestChurnStability:
    def test_long_maintenance_run_stays_consistent(self):
        """Hundreds of maintenance rounds with rotation enabled never
        produce a passive node pointing at a passive representative
        (for longer than a heartbeat period)."""
        base = np.linspace(0.0, 30.0, 2000)
        values = np.stack([base + 0.3 * i for i in range(12)])
        dataset = Dataset(values)
        topology = Topology([(0.08 * i, 0.0) for i in range(12)], ranges=2.0)
        runtime = SnapshotRuntime(
            topology, dataset,
            ProtocolConfig(
                threshold=5.0, heartbeat_period=10.0, rotation_probability=0.2
            ),
            seed=9,
        )
        runtime.train(duration=10)
        runtime.run_election()
        runtime.start_maintenance()
        for checkpoint in range(10):
            runtime.advance_to(runtime.now + 30)
            view = runtime.snapshot()
            # structure sanity at every checkpoint
            assert 1 <= view.size <= 12
            audit = view.audit()
            assert audit.n_spurious <= 2  # transient churn only

    def test_broken_pointers_self_correct_within_two_periods(self):
        runtime = correlated_runtime()
        runtime.train(duration=10)
        view = runtime.run_election()
        runtime.start_maintenance()
        # forcibly corrupt: make one representative forget a member
        rep_id = view.representatives[0]
        rep = runtime.nodes[rep_id]
        members = sorted(rep.represented)
        if members:
            victim = members[0]
            del rep.represented[victim]
            runtime.advance_to(runtime.now + 25)
            node = runtime.nodes[victim]
            assert node.mode.settled
            # healed: either re-claimed by someone or self-represented
            if node.mode is NodeMode.PASSIVE:
                assert victim in runtime.nodes[node.representative_id].represented
