"""Tests for the snapshot view and the spurious-representative audit."""

from __future__ import annotations

import pytest

from repro.core.config import ProtocolConfig
from repro.core.protocol import MemberInfo, ProtocolNode
from repro.core.snapshot import SnapshotView
from repro.core.status import NodeMode
from repro.network.links import GlobalLoss
from repro.network.radio import Radio
from repro.network.topology import Topology
from repro.simulation.engine import Simulator
from tests.conftest import make_runtime


def make_nodes(n: int = 4):
    simulator = Simulator(seed=0)
    topology = Topology([(0.1 * i, 0.0) for i in range(n)], ranges=2.0)
    radio = Radio(simulator, topology)
    radio.populate()
    config = ProtocolConfig()
    store = type("S", (), {"estimate": lambda self, *a, **k: None})()
    return {
        i: ProtocolNode(i, radio, store, config, lambda: 0.0, topology.position(i))
        for i in range(n)
    }


class TestCapture:
    def test_simple_assignment(self):
        nodes = make_nodes(3)
        nodes[0].mode = NodeMode.ACTIVE
        nodes[0].represented = {1: MemberInfo((0.1, 0.0), 5.0)}
        nodes[1].mode = NodeMode.PASSIVE
        nodes[1].representative_id = 0
        nodes[2].mode = NodeMode.ACTIVE
        view = SnapshotView.capture(nodes)
        assert view.representatives == (0, 2)
        assert view.size == 2
        assert view.representative_of(1) == 0
        assert view.representative_of(2) == 2
        assert view.members_of(0) == (0, 1)
        assert view.fraction() == pytest.approx(2 / 3)

    def test_undefined_counts_as_self_represented(self):
        nodes = make_nodes(2)
        # both left UNDEFINED (mid-re-election)
        view = SnapshotView.capture(nodes)
        assert view.representatives == (0, 1)
        assert view.assignment == {0: 0, 1: 1}

    def test_dead_nodes_excluded(self):
        nodes = make_nodes(3)
        for node in nodes.values():
            node.mode = NodeMode.ACTIVE
        nodes[1].device.battery._charge = 0.0  # simulate depletion
        nodes[1].device.battery._capacity = 1.0
        view = SnapshotView.capture(nodes)
        assert 1 not in view.assignment
        assert view.n_nodes == 2


class TestAudit:
    def test_clean_network_has_no_spurious(self):
        nodes = make_nodes(2)
        nodes[0].mode = NodeMode.ACTIVE
        nodes[0].represented = {1: MemberInfo(None, 1.0)}
        nodes[1].mode = NodeMode.PASSIVE
        nodes[1].representative_id = 0
        audit = SnapshotView.capture(nodes).audit()
        assert audit.n_spurious == 0

    def test_stale_claim_detected(self):
        nodes = make_nodes(3)
        # node 0 believes it represents node 2; node 2 actually chose node 1
        nodes[0].mode = NodeMode.ACTIVE
        nodes[0].represented = {2: MemberInfo(None, 1.0)}
        nodes[1].mode = NodeMode.ACTIVE
        nodes[1].represented = {2: MemberInfo(None, 2.0)}
        nodes[2].mode = NodeMode.PASSIVE
        nodes[2].representative_id = 1
        audit = SnapshotView.capture(nodes).audit()
        assert audit.spurious_representatives == (0,)
        assert audit.stale_claims == ((0, 2),)

    def test_corrected_assignment_matches_pointers(self):
        nodes = make_nodes(3)
        nodes[0].mode = NodeMode.ACTIVE
        nodes[0].represented = {2: MemberInfo(None, 1.0)}
        nodes[1].mode = NodeMode.ACTIVE
        nodes[1].represented = {2: MemberInfo(None, 2.0)}
        nodes[2].mode = NodeMode.PASSIVE
        nodes[2].representative_id = 1
        view = SnapshotView.capture(nodes)
        assert view.corrected_assignment()[2] == 1


class TestSpuriousUnderLoss:
    def test_loss_produces_bounded_spurious_representatives(self):
        """Under heavy loss spurious claims appear but stay a small
        fraction of the network (the Figure 13 observation)."""
        runtime = make_runtime(
            n_nodes=40, n_classes=1, loss_model=GlobalLoss(0.4), seed=17
        )
        runtime.train(duration=10)
        runtime.advance_to(100)
        view = runtime.run_election()
        audit = view.audit()
        assert audit.n_spurious <= view.n_nodes * 0.25
