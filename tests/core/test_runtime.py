"""Tests for the SnapshotRuntime facade and configuration validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ProtocolConfig
from repro.core.runtime import SnapshotRuntime
from repro.data.series import Dataset
from repro.models.metrics import AbsoluteError
from repro.network.topology import grid_topology
from tests.conftest import make_runtime


class TestConfigValidation:
    def test_defaults_valid(self):
        ProtocolConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"threshold": -1.0},
            {"phase_spacing": 0.0},
            {"max_wait": -1.0},
            {"p_wait": 1.5},
            {"snoop_probability": -0.1},
            {"heartbeat_period": 0.0},
            {"rotation_probability": 2.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ProtocolConfig(**kwargs)

    def test_custom_metric_accepted(self):
        config = ProtocolConfig(metric=AbsoluteError(), threshold=0.5)
        assert config.metric(3.0, 1.0) == 2.0


class TestRuntimeConstruction:
    def test_dataset_must_cover_topology(self):
        topology = grid_topology(3, 1.0)  # 9 nodes
        dataset = Dataset(np.zeros((4, 10)))
        with pytest.raises(ValueError, match="dataset"):
            SnapshotRuntime(topology, dataset)

    def test_value_of_tracks_clock(self):
        runtime = make_runtime(n_nodes=5, n_classes=1)
        v0 = runtime.value_of(0)
        runtime.advance_to(50.0)
        assert runtime.value_of(0) == runtime.dataset.value(0, 50.0)
        assert runtime.now == 50.0

    def test_alive_ids_shrink_with_battery(self):
        runtime = make_runtime(n_nodes=5, n_classes=1, battery_capacity=3.0)
        assert len(runtime.alive_ids()) == 5
        runtime.radio.node(2).battery.draw(10.0)
        assert 2 not in runtime.alive_ids()


class TestTraining:
    def test_training_builds_models(self):
        runtime = make_runtime(n_nodes=8, n_classes=1)
        runtime.train(duration=10)
        # every node heard every other node's ten broadcasts
        for node in runtime.nodes.values():
            known = node.store.known_neighbors()
            assert len(known) == 7

    def test_training_advances_clock(self):
        runtime = make_runtime(n_nodes=4, n_classes=1)
        runtime.train(duration=10)
        assert runtime.now == pytest.approx(10.0)

    def test_training_overrides_then_restores_snoop(self):
        runtime = make_runtime(n_nodes=4, n_classes=1)
        for node in runtime.nodes.values():
            node.snoop_probability = 0.05
        runtime.train(duration=5)
        for node in runtime.nodes.values():
            assert node.snoop_probability == 0.05

    def test_invalid_training_window(self):
        runtime = make_runtime(n_nodes=4, n_classes=1)
        with pytest.raises(ValueError):
            runtime.train(duration=0.0)
        with pytest.raises(ValueError):
            runtime.train(duration=5.0, interval=0.0)

    def test_training_messages_counted(self):
        runtime = make_runtime(n_nodes=4, n_classes=1)
        runtime.train(duration=10)
        assert runtime.stats.sent_of_kind("DataReport") == 40


class TestDeterminism:
    def test_same_seed_same_snapshot(self):
        def one(seed: int):
            runtime = make_runtime(n_nodes=20, n_classes=3, seed=seed)
            runtime.train(duration=10)
            runtime.advance_to(100)
            return runtime.run_election()

        a, b = one(9), one(9)
        assert a.representatives == b.representatives
        assert a.assignment == b.assignment

    def test_different_seeds_can_differ(self):
        results = set()
        for seed in range(4):
            runtime = make_runtime(n_nodes=20, n_classes=5, seed=seed)
            runtime.train(duration=10)
            runtime.advance_to(100)
            results.add(runtime.run_election().representatives)
        assert len(results) > 1
