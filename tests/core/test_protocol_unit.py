"""Focused unit tests of ProtocolNode mechanics.

The integration tests exercise whole elections; these pin down the
individual mechanisms: maintenance offer batching, heartbeat-reply
semantics, resign cool-downs, the energy volunteer guard, and the
selection policies.
"""

from __future__ import annotations

import pytest

from repro.core.config import ProtocolConfig
from repro.core.protocol import MemberInfo, ProtocolNode
from repro.core.status import NodeMode
from repro.models.cache import BYTES_PER_PAIR
from repro.models.cache_manager import ModelAwareCache
from repro.models.estimator import NeighborModelStore
from repro.network.messages import (
    Accept,
    CandidateList,
    Heartbeat,
    HeartbeatReply,
    Invitation,
)
from repro.network.radio import Radio
from repro.network.topology import Topology
from repro.simulation.engine import Simulator


def make_cluster(n: int = 4, **config_overrides):
    """``n`` protocol nodes, all in range, constant distinct values."""
    simulator = Simulator(seed=5)
    topology = Topology([(0.1 * i, 0.0) for i in range(n)], ranges=2.0)
    radio = Radio(simulator, topology)
    radio.populate()
    config = ProtocolConfig(threshold=10.0, **config_overrides)
    nodes = {}
    for node_id in range(n):
        store = NeighborModelStore(ModelAwareCache(BYTES_PER_PAIR * 64))
        nodes[node_id] = ProtocolNode(
            node_id, radio, store, config,
            value_fn=lambda nid=node_id: float(nid),
            location=topology.position(node_id),
        )
    return simulator, radio, nodes


def teach(nodes, learner: int, subject: int) -> None:
    """Give ``learner`` a usable model of ``subject`` (constant value)."""
    for x in (0.0, 1.0):
        nodes[learner].store.record(subject, x, float(subject))


class TestOfferBatching:
    def test_concurrent_invitations_one_candidate_list(self):
        simulator, radio, nodes = make_cluster(4)
        responder = nodes[0]
        responder.mode = NodeMode.ACTIVE
        responder.representative_id = 0
        teach(nodes, 0, 2)
        teach(nodes, 0, 3)
        before = radio.stats.sent_of_kind("CandidateList")
        responder._on_message(Invitation(sender=2, value=2.0, epoch=0), False)
        responder._on_message(Invitation(sender=3, value=3.0, epoch=0), False)
        simulator.run_until(simulator.now + 5.0)
        assert radio.stats.sent_of_kind("CandidateList") == before + 1

    def test_unmodeled_inviters_not_offered(self):
        simulator, radio, nodes = make_cluster(3)
        responder = nodes[0]
        responder.mode = NodeMode.ACTIVE
        responder.representative_id = 0
        # no model of node 2 at all
        responder._on_message(Invitation(sender=2, value=2.0, epoch=0), False)
        before = radio.stats.sent_of_kind("CandidateList")
        simulator.run_until(simulator.now + 5.0)
        assert radio.stats.sent_of_kind("CandidateList") == before

    def test_passive_node_responds_and_takes_role_when_accepted(self):
        simulator, radio, nodes = make_cluster(3)
        passive = nodes[0]
        passive.mode = NodeMode.PASSIVE
        passive.representative_id = 1
        nodes[1].mode = NodeMode.ACTIVE
        nodes[1].represented[0] = MemberInfo((0.0, 0.0), 0.0)
        teach(nodes, 0, 2)
        passive._on_message(Invitation(sender=2, value=2.0, epoch=0), False)
        simulator.run_until(simulator.now + 5.0)
        # node 0 offered; simulate node 2 accepting it
        passive._on_message(
            Accept(sender=2, representative=0, epoch=0, location=(0.2, 0.0),
                   timestamp=simulator.now),
            False,
        )
        simulator.run_until(simulator.now + 1.0)
        assert passive.mode is NodeMode.ACTIVE
        assert 2 in passive.represented
        # and it recalled its own representative
        assert 0 not in nodes[1].represented

    def test_energy_exhausted_node_never_volunteers(self):
        simulator, radio, nodes = make_cluster(
            3, energy_resign_fraction=0.5
        )
        responder = nodes[0]
        responder.mode = NodeMode.ACTIVE
        responder.representative_id = 0
        teach(nodes, 0, 2)
        # drain below the 50% threshold (infinite batteries report 1.0,
        # so rebuild with a finite one)
        radio.node(0).battery._capacity = 10.0
        radio.node(0).battery._charge = 2.0
        before = radio.stats.sent_of_kind("CandidateList")
        responder._on_message(Invitation(sender=2, value=2.0, epoch=0), False)
        simulator.run_until(simulator.now + 5.0)
        assert radio.stats.sent_of_kind("CandidateList") == before


class TestHeartbeatSemantics:
    def test_actual_representative_replies_with_estimate(self):
        simulator, radio, nodes = make_cluster(2)
        rep, member = nodes[0], nodes[1]
        rep.mode = NodeMode.ACTIVE
        rep.represented[1] = MemberInfo((0.1, 0.0), 0.0)
        teach(nodes, 0, 1)
        replies = []
        member_device = radio.node(1)
        member_device.attach(
            lambda msg, overheard: replies.append(msg)
            if isinstance(msg, HeartbeatReply) else None
        )
        rep._on_message(Heartbeat(sender=1, target=0, value=1.0), False)
        simulator.run_until(simulator.now + 1.0)
        assert len(replies) == 1
        assert replies[0].estimate == pytest.approx(1.0)

    def test_stale_pointer_gets_no_estimate(self):
        """A node that is NOT the sender's representative answers with
        estimate=None so the sender re-elects (§3 self-correction)."""
        simulator, radio, nodes = make_cluster(2)
        not_rep = nodes[0]
        not_rep.mode = NodeMode.PASSIVE  # not a representative at all
        teach(nodes, 0, 1)
        replies = []
        radio.node(1).attach(
            lambda msg, overheard: replies.append(msg)
            if isinstance(msg, HeartbeatReply) else None
        )
        not_rep._on_message(Heartbeat(sender=1, target=0, value=1.0), False)
        simulator.run_until(simulator.now + 1.0)
        assert len(replies) == 1
        assert replies[0].estimate is None

    def test_heartbeat_fine_tunes_the_model(self):
        simulator, radio, nodes = make_cluster(2)
        rep = nodes[0]
        rep.mode = NodeMode.ACTIVE
        rep.represented[1] = MemberInfo((0.1, 0.0), 0.0)
        assert rep.store.model(1) is None
        rep._on_message(Heartbeat(sender=1, target=0, value=7.5), False)
        assert rep.store.model(1) is not None
        # the cache-maintenance CPU charge was applied
        assert radio.ledger.node_breakdown(0)["cpu"] == pytest.approx(0.1)


class TestResign:
    def test_resign_clears_members_and_notifies(self):
        simulator, radio, nodes = make_cluster(3)
        rep = nodes[0]
        rep.mode = NodeMode.ACTIVE
        rep.represented[1] = MemberInfo((0.1, 0.0), 0.0)
        rep.represented[2] = MemberInfo((0.2, 0.0), 0.0)
        rep.resign()
        assert not rep.represented
        assert radio.stats.sent_of_kind("Resign") == 1

    def test_resign_requires_members(self):
        simulator, radio, nodes = make_cluster(2)
        lone = nodes[0]
        lone.mode = NodeMode.ACTIVE
        lone.resign()
        assert radio.stats.sent_of_kind("Resign") == 0

    def test_members_reelect_on_resign(self):
        simulator, radio, nodes = make_cluster(3)
        rep, member = nodes[0], nodes[1]
        rep.mode = NodeMode.ACTIVE
        rep.represented[1] = MemberInfo((0.1, 0.0), 0.0)
        member.mode = NodeMode.PASSIVE
        member.representative_id = 0
        # node 2 can take over
        nodes[2].mode = NodeMode.ACTIVE
        nodes[2].representative_id = 2
        teach(nodes, 2, 1)
        rep.resign()
        simulator.run_until(simulator.now + 10.0)
        assert member.mode.settled
        assert member.representative_id != 0
        assert member.reelections == 1


class TestSelectionPolicies:
    def test_longest_list_prefers_consolidation(self):
        simulator, radio, nodes = make_cluster(3)
        chooser = nodes[0]
        chooser._offers = {1: 5, 2: 2}
        assert chooser._best_offer() == 1

    def test_tie_breaks_to_largest_id(self):
        simulator, radio, nodes = make_cluster(3)
        chooser = nodes[0]
        chooser._offers = {1: 3, 2: 3}
        assert chooser._best_offer() == 2

    def test_random_policy_draws_from_all_offers(self):
        simulator, radio, nodes = make_cluster(
            3, selection_policy="random"
        )
        chooser = nodes[0]
        chooser._offers = {1: 5, 2: 1}
        picks = {chooser._best_offer() for _ in range(50)}
        assert picks == {1, 2}

    def test_no_offers(self):
        simulator, radio, nodes = make_cluster(2)
        assert nodes[0]._best_offer() is None


class TestCoveredNodes:
    def test_active_covers_self_and_members(self):
        simulator, radio, nodes = make_cluster(3)
        rep = nodes[0]
        rep.mode = NodeMode.ACTIVE
        rep.represented[2] = MemberInfo((0.2, 0.0), 0.0)
        assert rep.covered_nodes() == {0, 2}

    def test_passive_covers_nothing(self):
        simulator, radio, nodes = make_cluster(2)
        nodes[0].mode = NodeMode.PASSIVE
        assert nodes[0].covered_nodes() == set()

    def test_estimate_for_self_is_truth(self):
        simulator, radio, nodes = make_cluster(2)
        assert nodes[1].estimate_for(1) == 1.0
