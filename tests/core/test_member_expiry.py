"""Tests for timestamp-based stale-claim expiry (§3 self-correction)."""

from __future__ import annotations

import numpy as np
from repro.core.config import ProtocolConfig
from repro.core.protocol import MemberInfo
from repro.core.runtime import SnapshotRuntime
from repro.core.status import NodeMode
from repro.data.series import Dataset
from repro.network.mobility import RandomWaypoint, apply_mobility
from repro.network.topology import Topology


def expiring_runtime(expiry_periods: float = 3.0) -> SnapshotRuntime:
    base = np.linspace(0.0, 30.0, 800)
    values = np.stack([base + 0.4 * i for i in range(6)])
    dataset = Dataset(values)
    topology = Topology([(0.1 * i, 0.5) for i in range(6)], ranges=2.0)
    return SnapshotRuntime(
        topology, dataset,
        ProtocolConfig(
            threshold=5.0,
            heartbeat_period=10.0,
            member_expiry_periods=expiry_periods,
        ),
        seed=12,
    )


class TestExpiryMechanics:
    def test_member_info_last_heard_defaults_to_acceptance(self):
        info = MemberInfo(location=(0.0, 0.0), accepted_at=42.0)
        assert info.last_heard == 42.0

    def test_heartbeats_keep_claims_alive(self):
        runtime = expiring_runtime()
        runtime.train(duration=10)
        view = runtime.run_election()
        runtime.start_maintenance()
        rep = runtime.nodes[view.representatives[0]]
        members_before = set(rep.represented)
        runtime.advance_to(runtime.now + 100)  # ten periods
        assert set(rep.represented) == members_before

    def test_silent_member_expires(self):
        runtime = expiring_runtime()
        runtime.train(duration=10)
        view = runtime.run_election()
        runtime.start_maintenance()
        rep = runtime.nodes[view.representatives[0]]
        victim = sorted(rep.represented)[0]
        # silence the member: it dies, so its heartbeats stop
        runtime.radio.node(victim).battery._capacity = 1.0
        runtime.radio.node(victim).battery._charge = 0.0
        runtime.advance_to(runtime.now + 60)  # > 3 periods of silence
        assert victim not in rep.represented
        assert runtime.simulator.trace.count("maintenance.member_expired") >= 1

    def test_expiry_disabled_by_default(self):
        runtime = expiring_runtime(expiry_periods=0.0)
        runtime.train(duration=10)
        view = runtime.run_election()
        runtime.start_maintenance()
        rep = runtime.nodes[view.representatives[0]]
        victim = sorted(rep.represented)[0]
        runtime.radio.node(victim).battery._capacity = 1.0
        runtime.radio.node(victim).battery._charge = 0.0
        runtime.advance_to(runtime.now + 100)
        # the paper's Figure 10 behavior: the claim (and the model
        # estimate for the dead node) persists
        assert victim in rep.represented

    def test_expire_stale_members_direct(self):
        runtime = expiring_runtime()
        node = runtime.nodes[0]
        node.mode = NodeMode.ACTIVE
        node.represented[1] = MemberInfo(location=None, accepted_at=0.0)
        runtime.advance_to(50.0)
        expired = node.expire_stale_members(max_silence=40.0)
        assert expired == [1]
        assert not node.represented

    def test_passive_nodes_never_expire(self):
        runtime = expiring_runtime()
        node = runtime.nodes[0]
        node.mode = NodeMode.PASSIVE
        node.represented[1] = MemberInfo(location=None, accepted_at=0.0)
        runtime.advance_to(50.0)
        assert node.expire_stale_members(max_silence=1.0) == []


class TestExpiryUnderMobility:
    def test_mobile_network_sheds_stale_claims(self):
        """With expiry enabled, a drifting network keeps its spurious
        claim count bounded instead of accumulating them forever."""
        base = np.linspace(0.0, 30.0, 2500)
        values = np.stack([base + 0.4 * i for i in range(12)])
        dataset = Dataset(values)
        topology = Topology(
            [(0.2 + 0.05 * i, 0.5) for i in range(12)], ranges=0.2
        )
        runtime = SnapshotRuntime(
            topology, dataset,
            ProtocolConfig(
                threshold=5.0, heartbeat_period=10.0, member_expiry_periods=3.0
            ),
            seed=13,
        )
        runtime.train(duration=10)
        runtime.run_election()
        runtime.start_maintenance()
        apply_mobility(runtime, RandomWaypoint(speed=0.01), period=5.0)
        runtime.advance_to(runtime.now + 600)
        audit = runtime.snapshot().audit()
        assert len(audit.stale_claims) <= 4
