"""Tests for multi-resolution snapshots (§1/§3.1 extension)."""

from __future__ import annotations

import pytest

from repro.core.multi_resolution import MultiResolutionSnapshot
from tests.conftest import make_runtime


def trained(n_nodes: int = 20, n_classes: int = 4, seed: int = 31):
    runtime = make_runtime(n_nodes=n_nodes, n_classes=n_classes, seed=seed)
    runtime.train(duration=10)
    runtime.advance_to(100)
    return runtime


class TestValidation:
    def test_requires_thresholds(self):
        with pytest.raises(ValueError):
            MultiResolutionSnapshot(trained(), [])

    def test_requires_increasing(self):
        with pytest.raises(ValueError):
            MultiResolutionSnapshot(trained(), [1.0, 1.0])
        with pytest.raises(ValueError):
            MultiResolutionSnapshot(trained(), [2.0, 1.0])

    def test_requires_positive(self):
        with pytest.raises(ValueError):
            MultiResolutionSnapshot(trained(), [0.0, 1.0])


class TestResolutions:
    def test_coarser_thresholds_never_need_more_representatives(self):
        runtime = trained()
        multi = MultiResolutionSnapshot(runtime, [0.01, 1.0, 100.0])
        views = multi.build()
        sizes = [views[t].size for t in (0.01, 1.0, 100.0)]
        # monotone non-increasing with resolution coarsening (allowing
        # small protocol noise at equal levels)
        assert sizes[0] >= sizes[1] >= sizes[2]

    def test_runtime_threshold_restored(self):
        runtime = trained()
        original = runtime.config.threshold
        MultiResolutionSnapshot(runtime, [0.5, 5.0]).build()
        assert runtime.nodes[0].config.threshold == original
        assert runtime.coordinator.config.threshold == original

    def test_runtime_threshold_restored_when_election_raises(self, monkeypatch):
        """Regression: an election failing mid-build used to leave every
        node (and the coordinator) scoped to the failed threshold."""
        runtime = trained()
        original = runtime.config.threshold
        real_election = runtime.run_election
        calls = {"count": 0}

        def flaky(at=None):
            calls["count"] += 1
            if calls["count"] == 2:
                raise RuntimeError("election round lost")
            return real_election(at=at)

        monkeypatch.setattr(runtime, "run_election", flaky)
        multi = MultiResolutionSnapshot(runtime, [0.5, 5.0])
        with pytest.raises(RuntimeError, match="election round lost"):
            multi.build()
        assert runtime.coordinator.config.threshold == original
        assert all(
            node.config.threshold == original for node in runtime.nodes.values()
        )
        # the view that settled before the failure is still usable
        assert set(multi.views) == {0.5}

    def test_sizes_accessor(self):
        runtime = trained()
        multi = MultiResolutionSnapshot(runtime, [1.0, 10.0])
        multi.build()
        sizes = multi.sizes()
        assert set(sizes) == {1.0, 10.0}


class TestReuseRule:
    def test_query_served_by_coarsest_usable_snapshot(self):
        runtime = trained()
        multi = MultiResolutionSnapshot(runtime, [1.0, 10.0])
        multi.build()
        view = multi.view_for_threshold(5.0)
        assert view is multi.views[1.0]
        view10 = multi.view_for_threshold(50.0)
        assert view10 is multi.views[10.0]

    def test_tighter_query_needs_its_own_election(self):
        runtime = trained()
        multi = MultiResolutionSnapshot(runtime, [1.0, 10.0])
        multi.build()
        assert multi.view_for_threshold(0.5) is None

    def test_exact_threshold_match(self):
        runtime = trained()
        multi = MultiResolutionSnapshot(runtime, [1.0, 10.0])
        multi.build()
        assert multi.view_for_threshold(1.0) is multi.views[1.0]


class TestAccessors:
    def test_view_for_threshold_before_build(self):
        multi = MultiResolutionSnapshot(trained(), [1.0, 10.0])
        assert multi.view_for_threshold(100.0) is None
        assert multi.views == {}
        assert multi.sizes() == {}

    def test_views_accessor_returns_copy(self):
        multi = MultiResolutionSnapshot(trained(), [1.0, 10.0])
        built = multi.build()
        stolen = multi.views
        stolen.clear()
        built.clear()
        assert set(multi.views) == {1.0, 10.0}

    def test_thresholds_normalized_to_tuple(self):
        multi = MultiResolutionSnapshot(trained(), [0.5, 5.0])
        assert multi.thresholds == (0.5, 5.0)
