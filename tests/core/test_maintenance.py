"""Tests for §5.1 maintenance: heartbeats, self-healing, hand-off, rotation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ProtocolConfig
from repro.core.runtime import SnapshotRuntime
from repro.core.snapshot import SnapshotView
from repro.core.status import NodeMode
from repro.data.series import Dataset
from repro.network.topology import Topology


def two_cluster_runtime(
    threshold: float = 5.0,
    heartbeat_period: float = 10.0,
    battery: float | None = None,
    length: int = 400,
    drift_node: int | None = None,
    drift_at: int = 200,
    **config_overrides,
) -> SnapshotRuntime:
    """Five nodes, all in range, with near-identical series.

    Optionally one node's series jumps far away at ``drift_at`` so its
    representative's model goes stale mid-run.
    """
    base = np.linspace(0.0, 40.0, length)
    values = np.stack([base + offset for offset in (0.0, 0.5, 1.0, 1.5, 2.0)])
    if drift_node is not None:
        values[drift_node, drift_at:] += 1000.0
    dataset = Dataset(values)
    topology = Topology([(0.1 * i, 0.0) for i in range(5)], ranges=2.0)
    config = ProtocolConfig(
        threshold=threshold, heartbeat_period=heartbeat_period, **config_overrides
    )
    return SnapshotRuntime(
        topology, dataset, config, seed=21, battery_capacity=battery
    )


def warmed(runtime: SnapshotRuntime) -> SnapshotView:
    runtime.train(duration=10)
    view = runtime.run_election()
    return view


class TestHeartbeats:
    def test_steady_state_no_reelections(self):
        runtime = two_cluster_runtime()
        view = warmed(runtime)
        assert view.size < 5
        runtime.start_maintenance()
        runtime.advance_to(runtime.now + 50)
        assert sum(node.reelections for node in runtime.nodes.values()) == 0
        assert runtime.snapshot().size == view.size

    def test_heartbeats_flow_each_period(self):
        runtime = two_cluster_runtime()
        warmed(runtime)
        runtime.start_maintenance()
        before = runtime.stats.sent_of_kind("Heartbeat")
        runtime.advance_to(runtime.now + 35)
        sent = runtime.stats.sent_of_kind("Heartbeat") - before
        n_passive = sum(
            1 for n in runtime.nodes.values() if n.mode is NodeMode.PASSIVE
        )
        assert sent >= 3 * n_passive  # ~3 periods elapsed
        assert runtime.stats.sent_of_kind("HeartbeatReply") >= sent - n_passive

    def test_messages_per_round_bounded_by_six(self):
        runtime = two_cluster_runtime()
        warmed(runtime)
        runtime.start_maintenance()
        runtime.advance_to(runtime.now + 100)
        costs = runtime.maintenance.round_message_costs()
        assert costs, "at least one maintenance round must have completed"
        assert all(cost <= 6.0 for cost in costs)


class TestSelfHealing:
    def test_dead_representative_replaced(self):
        runtime = two_cluster_runtime(battery=50.0)
        view = warmed(runtime)
        rep = view.representatives[0]
        members = [n for n in runtime.nodes.values()
                   if n.representative_id == rep and n.node_id != rep]
        assert members
        runtime.start_maintenance()
        # kill the representative
        runtime.radio.node(rep).battery.draw(1e9)
        runtime.advance_to(runtime.now + 40)
        for member in members:
            assert member.representative_id != rep
            assert member.mode.settled
        assert all(m.reelections >= 1 for m in members)

    def test_model_drift_triggers_reelection(self):
        # Node 4 wins the election deterministically (longest-list ties
        # break to the largest id), so drift node 0: a represented node.
        drifting = two_cluster_runtime(drift_node=0, drift_at=60)
        view = warmed(drifting)
        assert drifting.nodes[0].mode is NodeMode.PASSIVE
        drifting.start_maintenance()
        drifting.advance_to(drifting.now + 60)
        node0 = drifting.nodes[0]
        # after its series jumped by 1000, no neighbor can represent it
        assert node0.mode is NodeMode.ACTIVE
        assert node0.representative_id in (None, 0)
        assert node0.reelections >= 1

    def test_recall_on_stale_model_prevents_spurious_claim(self):
        drifting = two_cluster_runtime(drift_node=0, drift_at=60)
        warmed(drifting)
        drifting.start_maintenance()
        drifting.advance_to(drifting.now + 60)
        audit = drifting.snapshot().audit()
        assert audit.n_spurious == 0

    def test_lone_active_folds_under_existing_representative(self):
        """An ACTIVE singleton periodically invites and joins a rep."""
        runtime = two_cluster_runtime()
        warmed(runtime)
        # force node 1 into lone-active state
        node1 = runtime.nodes[1]
        old_rep = node1.representative_id
        node1.mode = NodeMode.ACTIVE
        node1.representative_id = 1
        if old_rep is not None and old_rep != 1:
            runtime.nodes[old_rep].represented.pop(1, None)
        runtime.start_maintenance()
        runtime.advance_to(runtime.now + 30)
        assert node1.mode is NodeMode.PASSIVE
        assert node1.representative_id != 1


class TestEnergyHandoff:
    def test_low_battery_representative_resigns(self):
        runtime = two_cluster_runtime(
            battery=100.0, energy_resign_fraction=0.9, heartbeat_period=10.0
        )
        view = warmed(runtime)
        rep = view.representatives[0]
        rep_node = runtime.nodes[rep]
        assert rep_node.represented
        runtime.start_maintenance()
        # drain below the 90% threshold
        runtime.radio.node(rep).battery.draw(20.0)
        runtime.advance_to(runtime.now + 30)
        assert not rep_node.represented
        assert runtime.stats.sent_of_kind("Resign") >= 1

    def test_resigning_node_ignores_invitations(self):
        runtime = two_cluster_runtime(
            battery=100.0, energy_resign_fraction=0.9, heartbeat_period=10.0
        )
        view = warmed(runtime)
        rep = view.representatives[0]
        runtime.start_maintenance()
        runtime.radio.node(rep).battery.draw(20.0)
        runtime.advance_to(runtime.now + 30)
        # the members re-elected someone; the drained node must not
        # have been chosen again while resigning
        for node in runtime.nodes.values():
            if node.node_id != rep and node.mode is NodeMode.PASSIVE:
                assert node.representative_id != rep


class TestRotation:
    def test_leach_style_rotation_changes_representatives(self):
        runtime = two_cluster_runtime(
            rotation_probability=1.0, heartbeat_period=10.0
        )
        view = warmed(runtime)
        runtime.start_maintenance()
        runtime.advance_to(runtime.now + 25)
        assert runtime.stats.sent_of_kind("Resign") >= 1
        # the network reconverges: everyone settled
        for node in runtime.nodes.values():
            assert node.mode.settled

    def test_rotation_preserves_coverage(self):
        runtime = two_cluster_runtime(
            rotation_probability=0.5, heartbeat_period=10.0
        )
        warmed(runtime)
        runtime.start_maintenance()
        runtime.advance_to(runtime.now + 80)
        view = runtime.snapshot()
        covered = set(view.representatives)
        for rep in view.representatives:
            covered |= set(runtime.nodes[rep].represented)
        assert covered == set(range(5))


class TestManagerLifecycle:
    def test_double_start_rejected(self):
        runtime = two_cluster_runtime()
        warmed(runtime)
        runtime.start_maintenance()
        with pytest.raises(RuntimeError):
            runtime.start_maintenance()

    def test_stop_halts_heartbeats(self):
        runtime = two_cluster_runtime()
        warmed(runtime)
        runtime.start_maintenance()
        runtime.advance_to(runtime.now + 15)
        runtime.maintenance.stop()
        before = runtime.stats.sent_of_kind("Heartbeat")
        runtime.advance_to(runtime.now + 50)
        assert runtime.stats.sent_of_kind("Heartbeat") == before
        assert not runtime.maintenance.running

    def test_stop_records_partial_round(self):
        """Stopping mid-period must close the open accounting window:
        1.5 periods of traffic = one full round plus a recorded partial,
        not one round with half a period's messages dropped."""
        runtime = two_cluster_runtime(heartbeat_period=10.0)
        warmed(runtime)
        runtime.start_maintenance()
        runtime.advance_to(runtime.now + 15.0)
        runtime.maintenance.stop()
        assert runtime.maintenance.rounds_completed == 2
        costs = runtime.maintenance.round_message_costs()
        assert len(costs) == 2
        assert costs[1] > 0.0  # the partial round carried heartbeats

    def test_stop_is_idempotent(self):
        runtime = two_cluster_runtime()
        warmed(runtime)
        runtime.maintenance.stop()  # never started: no-op
        runtime.start_maintenance()
        runtime.advance_to(runtime.now + 15.0)
        runtime.maintenance.stop()
        rounds = runtime.maintenance.rounds_completed
        costs = runtime.maintenance.round_message_costs()
        runtime.maintenance.stop()  # second stop: nothing double-counted
        assert runtime.maintenance.rounds_completed == rounds
        assert runtime.maintenance.round_message_costs() == costs

    def test_restart_after_stop_runs_fresh_rounds(self):
        runtime = two_cluster_runtime()
        warmed(runtime)
        runtime.start_maintenance()
        runtime.advance_to(runtime.now + 15.0)
        runtime.maintenance.stop()
        rounds = runtime.maintenance.rounds_completed
        runtime.maintenance.start()  # no RuntimeError: fully disarmed
        assert runtime.maintenance.running
        runtime.advance_to(runtime.now + 20.0)
        assert runtime.maintenance.rounds_completed > rounds
        runtime.maintenance.stop()

    def test_stop_without_traffic_records_no_partial_round(self):
        runtime = two_cluster_runtime(heartbeat_period=10.0)
        warmed(runtime)
        runtime.start_maintenance()
        runtime.maintenance.stop()  # immediately: window is empty
        assert runtime.maintenance.rounds_completed == 0
        assert runtime.maintenance.round_message_costs() == []
