"""Election invariants on real (data-driven) networks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ProtocolConfig
from repro.core.runtime import SnapshotRuntime
from repro.core.status import NodeMode
from repro.data.random_walk import RandomWalkConfig, generate_random_walk
from repro.data.series import Dataset
from repro.network.links import GlobalLoss
from repro.network.topology import uniform_random_topology
from tests.conftest import make_runtime


def elect(runtime: SnapshotRuntime):
    runtime.train(duration=10)
    runtime.advance_to(100)
    return runtime.run_election()


class TestElectionInvariants:
    def test_everyone_settles(self):
        runtime = make_runtime(n_nodes=25, n_classes=3)
        elect(runtime)
        for node in runtime.nodes.values():
            assert node.mode.settled

    def test_passive_nodes_point_at_active_representatives(self):
        runtime = make_runtime(n_nodes=25, n_classes=3)
        elect(runtime)
        for node in runtime.nodes.values():
            if node.mode is NodeMode.PASSIVE:
                rep = runtime.nodes[node.representative_id]
                assert rep.mode is NodeMode.ACTIVE

    def test_active_nodes_represent_themselves(self):
        runtime = make_runtime(n_nodes=25, n_classes=3)
        elect(runtime)
        for node in runtime.nodes.values():
            if node.mode is NodeMode.ACTIVE:
                assert node.representative_id in (None, node.node_id)

    def test_snapshot_covers_network_without_loss(self):
        """Lossless: every node is either a representative or claimed
        by exactly the representative it points to."""
        runtime = make_runtime(n_nodes=25, n_classes=3)
        view = elect(runtime)
        covered = set(view.representatives)
        for rep in view.representatives:
            covered |= set(runtime.nodes[rep].represented)
        assert covered == set(range(25))

    def test_message_bound_without_loss(self):
        runtime = make_runtime(n_nodes=30, n_classes=4)
        elect(runtime)
        assert runtime.stats.max_protocol_messages_any_node() <= 5

    def test_no_spurious_without_loss(self):
        runtime = make_runtime(n_nodes=30, n_classes=4)
        view = elect(runtime)
        assert view.audit().n_spurious == 0

    def test_single_class_single_representative(self):
        """The paper's K=1 headline: one node represents everyone."""
        runtime = make_runtime(n_nodes=30, n_classes=1, threshold=1.0)
        view = elect(runtime)
        assert view.size == 1

    def test_threshold_zero_everyone_active_with_distinct_data(self):
        rng = np.random.default_rng(3)
        values = rng.normal(0.0, 100.0, size=(10, 120)).cumsum(axis=1)
        dataset = Dataset(values)
        topology = uniform_random_topology(10, 2.0, rng)
        runtime = SnapshotRuntime(
            topology, dataset, ProtocolConfig(threshold=1e-12), seed=5
        )
        view = elect(runtime)
        assert view.size == 10

    def test_epoch_increments_per_round(self):
        runtime = make_runtime(n_nodes=10, n_classes=2)
        runtime.train(duration=10)
        runtime.run_election()
        first = runtime.coordinator.epoch
        runtime.run_election()
        assert runtime.coordinator.epoch == first + 1

    def test_reelection_resets_state(self):
        """A second global election discards the first's assignments."""
        runtime = make_runtime(n_nodes=20, n_classes=2)
        view1 = elect(runtime)
        view2 = runtime.run_election()
        assert view2.n_nodes == view1.n_nodes
        for node in runtime.nodes.values():
            assert node.mode.settled

    def test_coordinator_rejects_past_start(self):
        runtime = make_runtime(n_nodes=5, n_classes=1)
        runtime.advance_to(10.0)
        with pytest.raises(ValueError):
            runtime.coordinator.start_round(at=5.0)


class TestElectionUnderLoss:
    def test_all_settle_under_moderate_loss(self):
        runtime = make_runtime(
            n_nodes=25, n_classes=2, loss_model=GlobalLoss(0.3)
        )
        view = elect(runtime)
        assert view.size >= 1
        settled = [n for n in runtime.nodes.values() if n.mode.settled]
        assert len(settled) >= 24  # the Rule-4 tail is sub-percent

    def test_total_loss_makes_everyone_self_represent(self):
        runtime = make_runtime(
            n_nodes=15, n_classes=1, loss_model=GlobalLoss(1.0)
        )
        view = elect(runtime)
        assert view.size == 15
        for node in runtime.nodes.values():
            assert node.mode is NodeMode.ACTIVE

    def test_loss_increases_snapshot_size(self):
        sizes = {}
        for loss in (0.0, 0.8):
            runtime = make_runtime(
                n_nodes=30, n_classes=1, loss_model=GlobalLoss(loss), seed=11
            )
            sizes[loss] = elect(runtime).size
        assert sizes[0.8] > sizes[0.0]


class TestDisconnectedNetwork:
    def test_isolated_nodes_represent_themselves(self):
        rng = np.random.default_rng(0)
        dataset, __ = generate_random_walk(
            RandomWalkConfig(n_nodes=4, n_classes=1, length=120), rng
        )
        # two clusters out of range of each other
        from repro.network.topology import Topology

        topology = Topology(
            [(0.0, 0.0), (0.01, 0.0), (0.9, 0.9), (0.91, 0.9)], ranges=0.05
        )
        runtime = SnapshotRuntime(topology, dataset, ProtocolConfig(threshold=5.0))
        view = elect(runtime)
        # each cluster elects locally; the clusters cannot merge
        assert view.size >= 2
        reps = set(view.representatives)
        assert reps & {0, 1}
        assert reps & {2, 3}
