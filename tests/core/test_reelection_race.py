"""Regression tests for §5.1 re-election re-entrancy.

The race: a PASSIVE node has a heartbeat probe in flight (reply pending,
timeout armed) when its representative resigns.  The Resign starts a
re-election; the stale heartbeat exchange — either the late reply
reporting a now-bogus estimate, or the timeout itself — then re-entered
``start_reelection`` *mid-collection*, double-counting ``reelections``,
clearing ``_offers`` under the first round's feet and broadcasting a
second Invitation that broke Table 2's per-epoch message budget.

The fix guards every entry point behind ``_awaiting_offers`` /
``_resigning`` and voids the in-flight heartbeat exchange when a
re-election begins; these tests drive the exact interleavings through
the event queue.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import ProtocolConfig
from repro.core.runtime import SnapshotRuntime
from repro.core.status import NodeMode
from repro.data.series import Dataset
from repro.network.topology import Topology


def five_node_runtime(seed: int = 21, **config_overrides) -> SnapshotRuntime:
    base = np.linspace(0.0, 40.0, 400)
    values = np.stack([base + offset for offset in (0.0, 0.5, 1.0, 1.5, 2.0)])
    topology = Topology([(0.1 * i, 0.0) for i in range(5)], ranges=2.0)
    config = ProtocolConfig(
        threshold=5.0, heartbeat_period=10.0, **config_overrides
    )
    runtime = SnapshotRuntime(topology, Dataset(values), config, seed=seed)
    runtime.train(duration=10)
    runtime.run_election()
    return runtime


def rep_and_member(runtime: SnapshotRuntime) -> tuple[int, int]:
    member = next(
        node_id
        for node_id, node in runtime.nodes.items()
        if node.mode is NodeMode.PASSIVE
    )
    return runtime.nodes[member].representative_id, member


class TestHeartbeatResignRace:
    def test_resign_during_heartbeat_counts_one_reelection(self):
        """Heartbeat in flight + Resign arriving = exactly one
        re-election round and one Invitation from the member."""
        runtime = five_node_runtime()
        rep_id, member_id = rep_and_member(runtime)
        member = runtime.nodes[member_id]
        mark = runtime.stats.mark()

        # Interleave inside one event-queue instant: the probe departs,
        # then the representative resigns before any reply lands.
        member.send_heartbeat()
        runtime.nodes[rep_id].resign()
        runtime.advance_to(runtime.now + 6.0)  # reply window + settling

        assert member.reelections == 1
        sent = runtime.stats.protocol_sent_per_node(since=mark)
        invitations = runtime.stats.sent.get((member_id, "Invitation"), 0) - mark.get(
            (member_id, "Invitation"), 0
        )
        assert invitations == 1
        assert member.mode.settled
        assert not member._awaiting_offers
        assert not member._await_reply
        # Table 2's per-node budget holds across the whole exchange.
        assert sent[member_id] <= 6

    def test_stale_heartbeat_timeout_does_not_reenter(self):
        """The timeout armed before the Resign must fizzle: it fires
        after the re-election began and must not start a second one."""
        runtime = five_node_runtime()
        rep_id, member_id = rep_and_member(runtime)
        member = runtime.nodes[member_id]

        member.send_heartbeat()
        assert member._await_reply
        runtime.nodes[rep_id].resign()
        # Run exactly past the heartbeat timeout (0.5) with the
        # re-election still collecting offers (reply window 3.0).
        runtime.advance_to(runtime.now + 1.0)
        assert member._awaiting_offers  # round 1 still open
        assert member.reelections == 1  # timeout did not re-enter
        runtime.advance_to(runtime.now + 5.0)
        assert member.reelections == 1

    def test_reelection_voids_pending_heartbeat_exchange(self):
        runtime = five_node_runtime()
        __, member_id = rep_and_member(runtime)
        member = runtime.nodes[member_id]
        member.send_heartbeat()
        assert member._await_reply
        member.start_reelection()
        assert not member._await_reply
        assert member._reply_timeout_event is None


class TestReentrancyGuards:
    def test_start_reelection_noop_while_awaiting_offers(self):
        runtime = five_node_runtime()
        __, member_id = rep_and_member(runtime)
        member = runtime.nodes[member_id]
        member.start_reelection()
        assert member.reelections == 1
        member.start_reelection()  # re-entrant call: guarded
        member.start_reelection()
        assert member.reelections == 1

    def test_start_reelection_noop_while_resigning(self):
        runtime = five_node_runtime()
        rep_id, __ = rep_and_member(runtime)
        rep = runtime.nodes[rep_id]
        rep.resign()
        assert rep._resigning
        before = rep.reelections
        rep.start_reelection()
        assert rep.reelections == before

    def test_concurrent_member_reelections_after_resign_all_settle(self):
        """Every member of a resigned representative re-elects at once;
        each counts exactly one round and the network re-forms."""
        runtime = five_node_runtime()
        rep_id, __ = rep_and_member(runtime)
        members = [
            node_id
            for node_id, node in runtime.nodes.items()
            if node.mode is NodeMode.PASSIVE
            and node.representative_id == rep_id
        ]
        runtime.nodes[rep_id].resign()
        runtime.advance_to(runtime.now + 8.0)
        for member_id in members:
            node = runtime.nodes[member_id]
            assert node.reelections == 1
            assert node.mode.settled
            assert not node._awaiting_offers
