"""Shared machinery for the checkpoint/restore differential suite.

The suite proves resume equivalence: a run frozen to disk at an
arbitrary point and restored must be *bit-identical, event-for-event*
to the uninterrupted run — same trace records, same per-round and
whole-sim digests, same message counters, same RunReport rows.

Everything here is deliberately driven only by runtime-owned random
streams (``simulator.random.stream(...)``), never by test-local
generators, so the complete source of randomness rides inside the
checkpoint.

Extended-matrix cases (named ``test_extended_*``) automatically carry
the ``bench`` marker — the ``benchmarks/`` convention — so tier-1's
``-m 'not bench'`` deselection keeps the default run fast while CI's
``persist`` job runs the full matrix.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ProtocolConfig
from repro.core.runtime import SnapshotRuntime
from repro.data.random_walk import RandomWalkConfig, generate_random_walk
from repro.experiments.harness import make_cache_factory
from repro.network.links import GlobalLoss
from repro.network.topology import uniform_random_topology
from repro.obs.report import RunReport
from repro.persist import RoundDigestRecorder
from repro.query.ast import Query
from repro.query.executor import QueryExecutor
from repro.query.spatial import random_square

N_NODES = 14
PERIOD = 25.0
HORIZON = 140.0


def pytest_collection_modifyitems(items):
    for item in items:
        if item.name.startswith("test_extended_"):
            item.add_marker(pytest.mark.bench)


def build_runtime(
    seed: int,
    policy: str = "model-aware",
    loss: float = 0.0,
    batched_rounds: bool = True,
) -> SnapshotRuntime:
    """A small maintenance-ready network, fully determined by its knobs."""
    data_rng = np.random.default_rng(seed)
    dataset, _ = generate_random_walk(
        RandomWalkConfig(n_nodes=N_NODES, n_classes=3, length=200), data_rng
    )
    topology = uniform_random_topology(N_NODES, 1.5, data_rng)
    runtime = SnapshotRuntime(
        topology,
        dataset,
        # rule4_retry is shrunk so the election settles in ~13 time
        # units instead of the paper's ~121, keeping the scripted
        # horizon (and the whole differential matrix) short.
        ProtocolConfig(threshold=1.0, heartbeat_period=PERIOD, rule4_retry=0.1),
        seed=seed,
        loss_model=GlobalLoss(loss),
        cache_factory=make_cache_factory(policy, 1024),
        keep_trace_records=True,
        batched_rounds=batched_rounds,
    )
    # Rides inside the pickled graph, so per-round digests survive the
    # freeze/restore cycle along with everything else.
    runtime.round_digests = RoundDigestRecorder(runtime)
    return runtime


def _train(runtime):
    runtime.train(duration=6.0)


def _elect(runtime):
    runtime.advance_to(20.0)
    runtime.run_election()


def _maintain(runtime):
    runtime.start_maintenance()


def _query(runtime):
    executor = QueryExecutor(runtime)
    region = random_square(0.4, runtime.simulator.random.stream("diff-regions"))
    try:
        executor.execute(Query(region=region, use_snapshot=True))
    except RuntimeError:
        pass  # every node dead — still a valid trajectory to compare


def _advance(time):
    def step(runtime):
        runtime.advance_to(time)

    return step


#: The scripted workload every differential case drives.  Checkpoints
#: may cut between any two steps (and, separately, mid-step at an
#: arbitrary event index).
SCRIPT = (
    _train,
    _elect,
    _maintain,
    _advance(55.0),
    _query,
    _advance(80.0),
    _query,
    _advance(105.0),
    _query,
    _advance(HORIZON),
)


def outcome(runtime) -> dict:
    """Everything the differential comparison asserts on, in one dict."""
    digest = runtime.state_digest()
    report = RunReport.capture(runtime, meta={"case": "differential"})
    return {
        "whole": digest.whole,
        "components": digest.components,
        "trace_records": list(runtime.simulator.trace.records),
        "trace_counts": dict(runtime.simulator.trace.counts),
        "sent": dict(runtime.stats.sent),
        "delivered": dict(runtime.stats.delivered),
        "dropped": dict(runtime.stats.dropped),
        "events_processed": runtime.simulator.events_processed,
        "now": runtime.simulator.now,
        "report_meta": report.meta,
        "report_rows": report.rows,
        "round_digests": list(runtime.round_digests.rounds),
    }


def assert_outcomes_equal(resumed: dict, reference: dict) -> None:
    """Field-by-field comparison, so a divergence names what broke."""
    assert resumed["events_processed"] == reference["events_processed"]
    assert resumed["now"] == reference["now"]
    assert resumed["trace_counts"] == reference["trace_counts"]
    assert resumed["trace_records"] == reference["trace_records"]
    assert resumed["sent"] == reference["sent"]
    assert resumed["delivered"] == reference["delivered"]
    assert resumed["dropped"] == reference["dropped"]
    assert resumed["report_meta"] == reference["report_meta"]
    assert resumed["report_rows"] == reference["report_rows"]
    assert resumed["round_digests"] == reference["round_digests"]
    assert resumed["components"] == reference["components"]
    assert resumed["whole"] == reference["whole"]


def run_reference(seed: int, policy: str, loss: float) -> dict:
    runtime = build_runtime(seed, policy, loss)
    for step in SCRIPT:
        step(runtime)
    return outcome(runtime)
