"""Differential proof that batched rounds match the scalar golden path.

``SnapshotRuntime(batched_rounds=True)`` routes every overheard
measurement observation through the ``BatchedObservationRouter`` and —
for the model-aware policy — applies them via the shared
``ModelAwareCacheFleet``.  These cases pin the equivalence contract:
the *entire observable outcome* (whole-sim digest, every component
digest, trace records, message counters, event count, report rows,
per-round digests) is equal to the scalar per-delivery path across
both cache policies × lossless/lossy, through a randomized fault
schedule, and through a checkpoint frozen mid-burst with observations
still pending in the batch.
"""

from __future__ import annotations

from functools import partial

import pytest

from repro.core.config import ProtocolConfig
from repro.faults.chaos import ChaosConfig, ChaosRun
from repro.persist import load_checkpoint, save_checkpoint
from repro.core.runtime import SnapshotRuntime

from tests.persist.conftest import (
    SCRIPT,
    assert_outcomes_equal,
    build_runtime,
    outcome,
)


def _run(seed, policy, loss, batched):
    runtime = build_runtime(seed, policy, loss, batched_rounds=batched)
    if batched:
        assert runtime.observation_router is not None
        if policy == "model-aware":
            # The whole deployment shares one fleet, one lane per node.
            fleet = runtime.observation_router.fleet
            assert fleet is not None and fleet.F == len(runtime.nodes)
        else:
            assert runtime.observation_router.fleet is None
    else:
        assert runtime.observation_router is None
    for step in SCRIPT:
        step(runtime)
    return outcome(runtime)


@pytest.mark.parametrize("loss", [0.0, 0.3], ids=["lossless", "lossy"])
def test_batched_matches_scalar_model_aware(loss):
    assert_outcomes_equal(
        _run(3, "model-aware", loss, batched=True),
        _run(3, "model-aware", loss, batched=False),
    )


@pytest.mark.parametrize("loss", [0.0, 0.3], ids=["lossless", "lossy"])
def test_extended_batched_matches_scalar_round_robin(loss):
    # No fleet for round-robin: the router applies samples scalarly at
    # the same barrier — ordering, effects and digests must still match.
    assert_outcomes_equal(
        _run(4, "round-robin", loss, batched=True),
        _run(4, "round-robin", loss, batched=False),
    )


def _chaos_outcome(batched):
    config = ChaosConfig(
        seed=13,
        n_nodes=8,
        n_faults=5,
        loss_burst=0.15,
        keep_trace_records=True,
        batched_rounds=batched,
    )
    run = ChaosRun(config)
    run.start()
    result = run.finish()
    runtime = result.runtime
    digest = runtime.state_digest()
    return {
        "ok": result.ok,
        "crashes": result.crashes,
        "revivals": result.revivals,
        "reelections": result.reelections,
        "final_coverage": result.final_coverage,
        "whole": digest.whole,
        "components": digest.components,
        "trace_records": list(runtime.simulator.trace.records),
        "events": runtime.simulator.events_processed,
        "sent": dict(runtime.stats.sent),
        "dropped": dict(runtime.stats.dropped),
    }


def test_extended_batched_chaos_schedule_matches_scalar():
    """Crashes, revivals, partitions and a loss burst: still bit-identical."""
    batched = _chaos_outcome(True)
    scalar = _chaos_outcome(False)
    assert batched == scalar
    assert batched["crashes"] > 0  # non-vacuity: faults really fired


def test_batched_checkpoint_mid_burst_resumes(tmp_path):
    """Freeze with observations still pending in the batch; the restored
    run flushes them exactly where the uninterrupted run would."""
    seed = 6
    reference = _run(seed, "model-aware", 0.0, batched=True)

    runtime = build_runtime(seed, "model-aware", 0.0, batched_rounds=True)
    # Replay train()'s exact schedule, but drive it one event at a time
    # so we can stop mid-delivery-burst (train() itself runs the whole
    # window; see SnapshotRuntime.train).
    simulator = runtime.simulator
    t0 = simulator.now
    end = t0 + 6.0
    saved_snoop = {
        node_id: node.snoop_probability for node_id, node in runtime.nodes.items()
    }
    simulator.schedule_at(
        t0, partial(runtime._set_snoop, None), label="train:snoop-on"
    )
    tick = t0
    while tick < end:
        simulator.schedule_at(tick, runtime._train_broadcast, label="train:broadcast")
        tick += 1.0
    simulator.schedule_at(
        end, partial(runtime._set_snoop, saved_snoop), label="train:snoop-restore"
    )
    while not runtime.observation_router.pending:
        assert simulator.run_until(end, max_events=1) == 1
    path = tmp_path / "mid-burst.ckpt"
    saved = save_checkpoint(runtime, path)
    # The un-flushed batch is part of the frozen state.
    assert "observations" in saved.components
    del runtime

    resumed = load_checkpoint(path)
    assert isinstance(resumed, SnapshotRuntime)
    assert resumed.observation_router.pending
    assert resumed.state_digest().whole == saved.whole
    resumed.simulator.run_until(end)
    for step in SCRIPT[1:]:
        step(resumed)
    assert_outcomes_equal(outcome(resumed), reference)


def test_batched_respects_observe_node_label_knob():
    """With the cardinality knob off, both paths key the counter by
    action alone — and still agree cell-for-cell."""
    import numpy as np

    from repro.data.random_walk import RandomWalkConfig, generate_random_walk
    from repro.network.topology import uniform_random_topology

    cells = {}
    for batched in (False, True):
        rng = np.random.default_rng(2)
        dataset, _ = generate_random_walk(
            RandomWalkConfig(n_nodes=10, n_classes=2, length=100), rng
        )
        topology = uniform_random_topology(10, 1.5, rng)
        runtime = SnapshotRuntime(
            topology,
            dataset,
            ProtocolConfig(observe_node_label=False),
            seed=2,
            batched_rounds=batched,
        )
        runtime.train(duration=5.0)
        counter = runtime.metrics.counter("cache.observe", labels=("action",))
        cells[batched] = dict(counter.cells)
    assert cells[True] == cells[False]
    assert cells[True], "training must have produced observations"
    for key in cells[True]:
        assert isinstance(key, str)  # action-only keys, no node label
