"""Edge cases of the shard-state merge (``persist.merge``).

The conformance matrix proves multi-shard merges against real sharded
runs; these tests pin the degenerate single-export contract — the
property the module's own docstring stakes out — and the error paths.
"""

from __future__ import annotations

import copy

import pytest

import numpy as np

from repro.core.config import ProtocolConfig
from repro.core.runtime import SnapshotRuntime
from repro.data.random_walk import RandomWalkConfig, generate_random_walk
from repro.network.topology import uniform_random_topology
from repro.persist import state_digest
from repro.persist.merge import (
    export_shard_state,
    merge_shard_states,
    merged_state_digest,
)


def build_runtime(seed: int) -> SnapshotRuntime:
    """As the differential suite's builder, minus the round-digest
    recorder — the merge (rightly) refuses live trace subscribers."""
    rng = np.random.default_rng(seed)
    dataset, _ = generate_random_walk(
        RandomWalkConfig(n_nodes=14, n_classes=3, length=200), rng
    )
    topology = uniform_random_topology(14, 1.5, rng)
    return SnapshotRuntime(
        topology,
        dataset,
        ProtocolConfig(threshold=1.0, heartbeat_period=25.0, rule4_retry=0.1),
        seed=seed,
        keep_trace_records=True,
    )


@pytest.fixture(scope="module")
def settled_runtime():
    """One maintenance-ready runtime shared by the read-only cases."""
    runtime = build_runtime(17)
    runtime.train(duration=6.0)
    runtime.advance_to(20.0)
    runtime.run_election()
    runtime.start_maintenance()
    runtime.advance_to(120.0)
    return runtime


def test_merge_of_no_exports_is_rejected():
    with pytest.raises(ValueError, match="at least one"):
        merge_shard_states([])


def test_single_export_merge_reproduces_own_digest(settled_runtime):
    """The degenerate one-shard merge must hash to the runtime's own
    ``state_digest`` — the invariant that keeps the exporter honest."""
    reference = state_digest(settled_runtime)
    merged = merged_state_digest([export_shard_state(settled_runtime)])
    assert merged.components == reference.components
    assert merged.whole == reference.whole


def test_single_export_merge_is_stable_under_reexport(settled_runtime):
    """Exporting is a pure read: doing it twice merges identically."""
    first = merged_state_digest([export_shard_state(settled_runtime)])
    second = merged_state_digest([export_shard_state(settled_runtime)])
    assert first.whole == second.whole


def test_merge_rejects_pending_observations(settled_runtime):
    export = export_shard_state(settled_runtime)
    export = copy.deepcopy(export)
    export["router_pending"] = 3
    with pytest.raises(ValueError, match="mid-burst"):
        merge_shard_states([export])


def test_merge_rejects_clock_disagreement(settled_runtime):
    left = export_shard_state(settled_runtime)
    right = copy.deepcopy(left)
    right["now"] = left["now"] + 1.0
    with pytest.raises(ValueError, match="clock"):
        merge_shard_states([left, right])


def test_merge_rejects_node_ownership_collision(settled_runtime):
    """Two shards claiming the same node with different state is a
    partition bug the union must catch, not paper over."""
    left = export_shard_state(settled_runtime)
    right = copy.deepcopy(left)
    some_node = next(iter(right["nodes"]))
    right["nodes"] = {some_node: ("tampered",)}
    right["now"] = left["now"]
    with pytest.raises(ValueError, match="node"):
        merge_shard_states([left, right])


def test_merge_rejects_epoch_disagreement(settled_runtime):
    left = export_shard_state(settled_runtime)
    right = copy.deepcopy(left)
    right["coordinator_epoch"] = left["coordinator_epoch"] + 1
    with pytest.raises(ValueError, match="epoch"):
        merge_shard_states([left, right])


def test_pre_election_runtime_merges_too():
    """A runtime that has not elected (no maintenance, no rounds) is a
    valid degenerate export — the merge handles the empty structures."""
    runtime = build_runtime(19)
    runtime.train(duration=6.0)
    reference = state_digest(runtime)
    merged = merged_state_digest([export_shard_state(runtime)])
    assert merged.whole == reference.whole
