"""Unit tests for the versioned on-disk checkpoint format."""

from __future__ import annotations

import json
import os
import zlib

import pytest

from repro.persist import (
    FORMAT_VERSION,
    MAGIC,
    CheckpointError,
    CheckpointIntegrityError,
    CheckpointVersionError,
    load_checkpoint,
    read_header,
    save_checkpoint,
)
from repro.simulation.engine import Simulator

from tests.persist.conftest import SCRIPT, build_runtime


def _split(path):
    """(header dict, payload bytes) of a checkpoint file."""
    raw = path.read_bytes()
    assert raw.startswith(MAGIC)
    rest = raw[len(MAGIC):]
    newline = rest.index(b"\n")
    return json.loads(rest[:newline]), rest[newline + 1:]


def _rewrite(path, header, payload):
    line = json.dumps(header, sort_keys=True, separators=(",", ":"))
    path.write_bytes(MAGIC + line.encode("utf-8") + b"\n" + payload)


@pytest.fixture
def checkpoint(tmp_path):
    runtime = build_runtime(seed=4)
    for step in SCRIPT[:3]:
        step(runtime)
    path = tmp_path / "net.ckpt"
    digest = save_checkpoint(runtime, path, meta={"note": "format-tests"})
    return path, digest


class TestHeader:
    def test_header_fields(self, checkpoint):
        path, digest = checkpoint
        header = read_header(path)
        assert header["format"] == FORMAT_VERSION
        assert header["codec"] == "pickle+zlib"
        assert header["payload_bytes"] == len(_split(path)[1])
        assert header["digest"]["whole"] == digest.whole
        assert header["digest"]["components"] == digest.components
        assert header["meta"] == {"note": "format-tests"}

    def test_header_is_deterministic(self, checkpoint, tmp_path):
        """Same state → byte-identical file (no timestamps, sorted keys)."""
        path, _ = checkpoint
        runtime = build_runtime(seed=4)
        for step in SCRIPT[:3]:
            step(runtime)
        again = tmp_path / "again.ckpt"
        save_checkpoint(runtime, again, meta={"note": "format-tests"})
        assert again.read_bytes() == path.read_bytes()

    def test_undigestable_payloads_get_null_digest(self, tmp_path):
        path = tmp_path / "plain.ckpt"
        assert save_checkpoint({"answer": 42}, path) is None
        assert read_header(path)["digest"] is None
        assert load_checkpoint(path) == {"answer": 42}

    def test_simulator_checkpoints_standalone(self, tmp_path):
        simulator = Simulator(seed=77)
        simulator.random.stream("a").random(3)
        simulator.run_until(5.0)
        path = tmp_path / "engine.ckpt"
        saved = simulator.checkpoint(path)
        restored = Simulator.restore(path)
        assert restored.now == 5.0
        from repro.persist import state_digest

        assert state_digest(restored).whole == saved.whole


class TestCorruption:
    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(b"not a checkpoint at all\n")
        with pytest.raises(CheckpointError, match="magic"):
            load_checkpoint(path)

    def test_truncated_payload_rejected(self, checkpoint):
        path, _ = checkpoint
        raw = path.read_bytes()
        path.write_bytes(raw[:-10])
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_flipped_payload_byte_rejected(self, checkpoint):
        path, _ = checkpoint
        header, payload = _split(path)
        corrupted = bytes([payload[0] ^ 0xFF]) + payload[1:]
        _rewrite(path, header, corrupted)
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_newer_format_version_rejected(self, checkpoint):
        path, _ = checkpoint
        header, payload = _split(path)
        header["format"] = FORMAT_VERSION + 1
        _rewrite(path, header, payload)
        with pytest.raises(CheckpointVersionError):
            load_checkpoint(path)

    def test_digest_mismatch_names_components(self, checkpoint):
        """A tampered stored digest fails verification and the error
        carries exactly the divergent component names."""
        path, _ = checkpoint
        header, payload = _split(path)
        header["digest"]["components"]["clock"] = "0" * 64
        header["digest"]["whole"] = "0" * 64
        _rewrite(path, header, payload)
        with pytest.raises(CheckpointIntegrityError) as excinfo:
            load_checkpoint(path)
        assert excinfo.value.components == ["clock"]
        # verify=False skips the digest comparison and still loads.
        restored = load_checkpoint(path, verify=False)
        assert restored.simulator.now > 0


class TestAtomicity:
    def test_no_tmp_files_left_behind(self, checkpoint, tmp_path):
        assert [p.name for p in tmp_path.iterdir()] == ["net.ckpt"]

    def test_overwrite_replaces_cleanly(self, checkpoint):
        path, _ = checkpoint
        runtime = build_runtime(seed=8)
        for step in SCRIPT[:2]:
            step(runtime)
        digest = save_checkpoint(runtime, path)
        assert read_header(path)["digest"]["whole"] == digest.whole

    def test_failed_pickle_leaves_no_file(self, tmp_path):
        path = tmp_path / "never.ckpt"
        with pytest.raises(Exception):
            save_checkpoint(lambda: None, path)  # lambdas don't pickle
        assert not os.path.exists(path)
        assert list(tmp_path.iterdir()) == []


def test_zlib_actually_compresses(checkpoint):
    path, _ = checkpoint
    header, payload = _split(path)
    assert len(zlib.decompress(payload)) > len(payload)
