"""Scalar vs struct-of-arrays cache: whole-simulation equivalence.

The golden-trace guarantee behind the ``vectorized=True`` default: a
complete scripted simulation — election, maintenance rounds, snapshot
queries, lossless and lossy radio — produces *bit-identical*
trajectories, per-round digests and whole-sim digests whichever
backing store the model-aware cache uses.  Identical trajectories
imply identical derived outputs (the Fig 8/12/13 pipelines read the
same trace and cache state), so this suite pins the figures too.

Also covered: the checkpoint/restore differential legs with the
vectorized cache (a ``NeighborBlock`` frozen mid-round restores
byte-identically) and direct pickle round-trips of the SoA engines.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.models.cache import BYTES_PER_PAIR
from repro.models.cache_manager import ModelAwareCache
from repro.models.soa import ModelAwareCacheFleet, NeighborBlock
from repro.persist import load_checkpoint, save_checkpoint
from repro.persist.digest import canonical_bytes

from tests.persist.conftest import (
    SCRIPT,
    assert_outcomes_equal,
    build_runtime,
    outcome,
)


def _run(seed: int, policy: str, loss: float) -> dict:
    runtime = build_runtime(seed, policy, loss)
    for step in SCRIPT:
        step(runtime)
    return outcome(runtime)


def test_vectorized_matches_scalar_whole_run_lossless():
    vec = _run(2005, "model-aware", 0.0)
    sca = _run(2005, "model-aware-scalar", 0.0)
    assert_outcomes_equal(sca, vec)
    assert vec["round_digests"], "script must complete maintenance rounds"


def test_vectorized_matches_scalar_whole_run_lossy():
    assert_outcomes_equal(
        _run(1813, "model-aware-scalar", 0.3), _run(1813, "model-aware", 0.3)
    )


@pytest.mark.parametrize("loss", [0.0, 0.25], ids=["lossless", "lossy"])
def test_vectorized_cache_resumes_bit_identically(loss, tmp_path):
    """Freeze mid-script with the SoA cache; the resumed run matches."""
    seed = 5
    reference = _run(seed, "model-aware", loss)
    for cut in (3, 5):  # after start_maintenance / mid-round advances
        runtime = build_runtime(seed, "model-aware", loss)
        for step in SCRIPT[:cut]:
            step(runtime)
        path = tmp_path / f"vec-cut{cut}.ckpt"
        saved = save_checkpoint(runtime, path)
        del runtime
        resumed = load_checkpoint(path)
        assert resumed.state_digest().whole == saved.whole
        # the restored policy still runs the SoA engine (as a fleet
        # lane under batched rounds, as a per-node block otherwise)
        policy = resumed.nodes[0].store.policy
        assert policy.vectorized
        assert policy._fleet is not None or policy._block is not None
        for step in SCRIPT[cut:]:
            step(resumed)
        assert_outcomes_equal(outcome(resumed), reference)


def _stream(length, neighbors, seed):
    rng = np.random.default_rng(seed)
    own = np.cumsum(rng.normal(0.0, 1.0, size=length)) + 20.0
    ids = rng.integers(0, neighbors, size=length)
    noise = rng.normal(0.0, 0.5, size=length)
    return [
        (int(ids[k]), float(own[k]), float(1.5 * own[k] + noise[k]))
        for k in range(length)
    ]


def test_neighbor_block_pickle_roundtrip_is_byte_identical():
    """A mid-stream NeighborBlock restores to the exact same state and
    keeps behaving identically under further traffic."""
    cache = ModelAwareCache(BYTES_PER_PAIR * 32, vectorized=True)
    stream = _stream(800, 5, 77)
    for j, x, y in stream[:500]:
        cache.observe(j, x, y)
    restored = pickle.loads(pickle.dumps(cache))
    assert canonical_bytes(restored.digest_state()) == canonical_bytes(
        cache.digest_state()
    )
    for j, x, y in stream[500:]:
        assert restored.observe(j, x, y) == cache.observe(j, x, y)
    assert canonical_bytes(restored.digest_state()) == canonical_bytes(
        cache.digest_state()
    )


def test_fleet_pickle_roundtrip_is_byte_identical():
    fleet = ModelAwareCacheFleet(16, 256, max_lines=6, ring_cap=16)
    streams = [_stream(300, 4, 100 + c) for c in range(16)]
    for t in range(200):
        fleet.observe_batch(
            np.array([streams[c][t][0] for c in range(16)]),
            np.array([streams[c][t][1] for c in range(16)]),
            np.array([streams[c][t][2] for c in range(16)]),
        )
    restored = pickle.loads(pickle.dumps(fleet))
    for c in range(16):
        assert canonical_bytes(restored.cache_state(c)) == canonical_bytes(
            fleet.cache_state(c)
        )
    for t in range(200, 300):
        js = np.array([streams[c][t][0] for c in range(16)])
        xs = np.array([streams[c][t][1] for c in range(16)])
        ys = np.array([streams[c][t][2] for c in range(16)])
        assert (restored.observe_batch(js, xs, ys) == fleet.observe_batch(js, xs, ys)).all()
    for c in range(16):
        assert canonical_bytes(restored.cache_state(c)) == canonical_bytes(
            fleet.cache_state(c)
        )


def test_bare_block_pickle_preserves_free_list_and_cursor():
    """Engine bookkeeping (row free-list, rr cursor) survives pickling:
    the restored block reuses rows exactly as the original does."""
    block = NeighborBlock(BYTES_PER_PAIR * 8)
    rng = np.random.default_rng(9)
    for _ in range(400):
        block.observe(int(rng.integers(0, 4)), float(rng.normal()), float(rng.normal()))
    clone = pickle.loads(pickle.dumps(block))
    assert clone.rr_cursor == block.rr_cursor
    assert clone._free == block._free
    assert clone._index == block._index
    for _ in range(200):
        j = int(rng.integers(0, 4))
        x, y = float(rng.normal()), float(rng.normal())
        assert clone.observe(j, x, y) == block.observe(j, x, y)
    assert clone._index == block._index and clone._free == block._free
