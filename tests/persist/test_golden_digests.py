"""Golden digest regression tests.

Two seeded reference runs have their whole-sim digests pinned.  A
change to these constants means the simulation trajectory (or the
digest canonicalization itself) changed — either is a behavioral
change that must be deliberate and called out in review, exactly like
the golden trace tests pin trajectories.

The self-test at the bottom keeps the pins honest: a mutation to live
node state must change the digest and name the divergent component.
"""

from __future__ import annotations

from tests.persist.conftest import SCRIPT, build_runtime

#: (seed, policy, loss) -> pinned whole-sim digest after the scripted run.
#:
#: The model-aware pin moved when policy canonicalization switched to
#: ``CachePolicy.digest_state()``, which drops the manager's derived
#: penalty memo / victim heap / dirty set (pure functions of line
#: state) so scalar and struct-of-arrays backing stores digest equal.
#: Both pins moved when the sharded engine's merge-friendly
#: canonicalization landed: the clock digest dropped the
#: events-processed tally, the queue digest became content-sorted
#: (dropping insertion counters and cancelled handles), and the energy
#: digest dropped the ledger's order-sensitive float totals (derivable
#: from its registry cells).  Each change strips representation detail
#: only; the trajectories themselves are unchanged, which the
#: differential resume and shard-conformance suites keep proving
#: against live reference runs.
GOLDEN = {
    (2005, "model-aware", 0.0): (
        "d989656b7ad3cb8936941556bc9a2b2eb02c11434584ee41bed2acb9ce6a7046"
    ),
    (1813, "round-robin", 0.3): (
        "c7d64f56b586ee9e1b6fcbbdf7168cd89cfafb207c245cfad440d41a9e3134a2"
    ),
}


def _finished_runtime(seed, policy, loss):
    runtime = build_runtime(seed, policy, loss)
    for step in SCRIPT:
        step(runtime)
    return runtime


def test_golden_digest_lossless_model_aware():
    runtime = _finished_runtime(2005, "model-aware", 0.0)
    assert runtime.state_digest().whole == GOLDEN[(2005, "model-aware", 0.0)]


def test_golden_digest_lossy_round_robin():
    runtime = _finished_runtime(1813, "round-robin", 0.3)
    assert runtime.state_digest().whole == GOLDEN[(1813, "round-robin", 0.3)]


def test_digest_is_reproducible_within_a_run():
    """Digesting twice without advancing is a pure read."""
    runtime = _finished_runtime(2005, "model-aware", 0.0)
    assert runtime.state_digest().whole == runtime.state_digest().whole


def test_mutated_node_state_changes_digest():
    """Non-vacuity: the digest actually covers protocol node state."""
    runtime = _finished_runtime(2005, "model-aware", 0.0)
    before = runtime.state_digest()
    node = runtime.nodes[0]
    node.epoch += 1
    after = runtime.state_digest()
    assert after.whole != before.whole
    assert "nodes" in before.diff(after)
    node.epoch -= 1
    assert runtime.state_digest().whole == before.whole


def test_mutated_battery_changes_energy_component():
    runtime = _finished_runtime(1813, "round-robin", 0.3)
    before = runtime.state_digest()
    runtime.radio.nodes[0].battery.draw(1.0)
    after = runtime.state_digest()
    assert after.whole != before.whole
    assert "energy" in before.diff(after)
