"""Resume equivalence through a fault plan: freeze mid-chaos, restore,
and the ridden-out schedule is bit-identical to the uninterrupted one."""

from __future__ import annotations

from repro.faults.chaos import ChaosConfig, ChaosRun
from repro.persist import load_checkpoint, save_checkpoint, state_digest

CONFIG = ChaosConfig(seed=11, n_nodes=8, n_faults=5, loss_burst=0.2)


def _result_fields(result) -> dict:
    return {
        "ok": result.ok,
        "violations": [str(v) for v in result.violations],
        "checks_run": result.checks_run,
        "bound_checks_run": result.bound_checks_run,
        "crashes": result.crashes,
        "revivals": result.revivals,
        "reelections": result.reelections,
        "final_coverage": result.final_coverage,
        "alive_fraction": result.alive_fraction,
        "sent": dict(result.runtime.stats.sent),
        "dropped": dict(result.runtime.stats.dropped),
        "events": result.runtime.simulator.events_processed,
    }


def test_resume_mid_fault_plan_matches_uninterrupted(tmp_path):
    # Uninterrupted reference schedule.
    reference = ChaosRun(CONFIG)
    try:
        reference.start()
        reference_result = reference.finish()
    finally:
        reference.checker.close()

    # Same schedule, frozen to disk halfway through the fault window —
    # crashes/bursts/partitions still pending in the queue, the loss
    # overlay armed, the invariant checker's subscriptions live.
    interrupted = ChaosRun(CONFIG)
    quiet_at = interrupted.start()
    started_at = interrupted.runtime.now
    assert quiet_at > started_at
    freeze_at = started_at + (quiet_at - started_at) / 2
    interrupted.advance_to(freeze_at)
    assert interrupted.runtime.now < quiet_at, "freeze point must be mid-plan"
    path = tmp_path / "mid-chaos.ckpt"
    saved = save_checkpoint(interrupted, path)
    del interrupted

    resumed = load_checkpoint(path)
    assert state_digest(resumed).whole == saved.whole
    assert "chaos" in saved.components, "digest_extra must fold chaos state in"
    try:
        resumed_result = resumed.finish()
    finally:
        resumed.checker.close()

    assert _result_fields(resumed_result) == _result_fields(reference_result)
    assert (
        state_digest(resumed).whole == state_digest(reference).whole
    ), "finished states must be bit-identical"


def test_chaos_run_refuses_double_finish(tmp_path):
    run = ChaosRun(ChaosConfig(seed=3, n_nodes=6, n_faults=3))
    try:
        run.start()
        run.finish()
    finally:
        run.checker.close()
    try:
        run.finish()
    except RuntimeError as error:
        assert "already finished" in str(error)
    else:
        raise AssertionError("second finish() must be rejected")
