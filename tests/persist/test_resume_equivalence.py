"""Differential resume-equivalence suite.

Checkpoint a scripted run at several cut points, restore from disk, run
the remainder, and assert the resumed trajectory is bit-identical to an
uninterrupted run of the same script: same trace records event for
event, same per-round and whole-sim digests, same message counters,
same RunReport rows.
"""

from __future__ import annotations

import pytest

from repro.core.runtime import SnapshotRuntime
from repro.persist import load_checkpoint, save_checkpoint

from tests.persist.conftest import (
    HORIZON,
    SCRIPT,
    assert_outcomes_equal,
    build_runtime,
    outcome,
    run_reference,
)


def run_with_cut(seed, policy, loss, cut, tmp_path) -> dict:
    """Run ``SCRIPT[:cut]``, freeze through disk, restore, finish."""
    runtime = build_runtime(seed, policy, loss)
    for step in SCRIPT[:cut]:
        step(runtime)
    path = tmp_path / f"cut{cut}.ckpt"
    saved = save_checkpoint(runtime, path)
    del runtime
    resumed = load_checkpoint(path)
    # The restored state digests identically to what was frozen.
    assert resumed.state_digest().whole == saved.whole
    for step in SCRIPT[cut:]:
        step(resumed)
    return outcome(resumed)


@pytest.mark.parametrize("policy", ["model-aware", "round-robin"])
@pytest.mark.parametrize("loss", [0.0, 0.25], ids=["lossless", "lossy"])
def test_resume_is_bit_identical(policy, loss, tmp_path):
    seed = 5
    reference = run_reference(seed, policy, loss)
    for cut in (2, 4, 7):
        resumed = run_with_cut(seed, policy, loss, cut, tmp_path)
        assert_outcomes_equal(resumed, reference)
    # Non-vacuity: the script really completed maintenance rounds.
    assert reference["round_digests"], "script must complete maintenance rounds"


def test_checkpoint_at_arbitrary_event_index(tmp_path):
    """Cut *inside* an advance, at a raw event index, not a step seam."""
    seed, policy, loss = 9, "model-aware", 0.2
    reference = run_reference(seed, policy, loss)

    runtime = build_runtime(seed, policy, loss)
    for step in SCRIPT[:5]:
        step(runtime)
    # Partially drain the advance-to-80 window: stop after 13 events,
    # mid-flight, with deliveries and timers still queued.
    fired = runtime.simulator.run_until(80.0, max_events=13)
    assert fired == 13
    assert runtime.simulator.now < 80.0
    path = tmp_path / "mid-advance.ckpt"
    runtime.checkpoint(path)
    del runtime

    resumed = SnapshotRuntime.restore(path)
    resumed.simulator.run_until(80.0)
    for step in SCRIPT[6:]:
        step(resumed)
    assert_outcomes_equal(outcome(resumed), reference)


def test_double_freeze_resume_chain(tmp_path):
    """Freeze, resume, freeze again, resume again — still identical."""
    seed, policy, loss = 7, "round-robin", 0.25
    reference = run_reference(seed, policy, loss)

    runtime = build_runtime(seed, policy, loss)
    for step in SCRIPT[:3]:
        step(runtime)
    first = tmp_path / "first.ckpt"
    save_checkpoint(runtime, first)
    del runtime

    middle = load_checkpoint(first)
    for step in SCRIPT[3:6]:
        step(middle)
    second = tmp_path / "second.ckpt"
    save_checkpoint(middle, second)
    del middle

    final = load_checkpoint(second)
    for step in SCRIPT[6:]:
        step(final)
    assert_outcomes_equal(outcome(final), reference)


def test_checkpoint_file_is_inert(tmp_path):
    """Restoring twice from one file gives two independent, equal runs."""
    runtime = build_runtime(3, "model-aware", 0.0)
    for step in SCRIPT[:4]:
        step(runtime)
    path = tmp_path / "twice.ckpt"
    save_checkpoint(runtime, path)
    del runtime

    first = load_checkpoint(path)
    for step in SCRIPT[4:]:
        step(first)
    first_outcome = outcome(first)

    second = load_checkpoint(path)
    for step in SCRIPT[4:]:
        step(second)
    assert_outcomes_equal(outcome(second), first_outcome)
    assert first_outcome["now"] == HORIZON


@pytest.mark.parametrize("seed", [3, 11])
@pytest.mark.parametrize("policy", ["model-aware", "round-robin"])
@pytest.mark.parametrize("loss", [0.0, 0.25], ids=["lossless", "lossy"])
def test_extended_full_cut_matrix(seed, policy, loss, tmp_path):
    """Every step seam of the script is a valid freeze point."""
    reference = run_reference(seed, policy, loss)
    for cut in range(1, len(SCRIPT)):
        resumed = run_with_cut(seed, policy, loss, cut, tmp_path)
        assert_outcomes_equal(resumed, reference)
