"""Property tests: query text round-trips and checkpoint round-trips.

Two invariant families back the persistence story:

* ``parse(format(q)) == q`` for every representable ``USE SNAPSHOT``
  query — the dialect's own serialization is lossless, so checkpoint
  metadata and logs that carry query text are faithful.
* A cache (either policy) or a bare :class:`RegressionStats` written
  through the on-disk checkpoint format and read back is *exactly* the
  object that was saved: identical canonical digest, bit-identical
  regression fit.  This is the micro-level version of what the
  differential suite proves for whole simulations.
"""

from __future__ import annotations

import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.cache_manager import ModelAwareCache
from repro.models.regression import RegressionStats
from repro.models.round_robin import RoundRobinCache
from repro.persist import load_checkpoint, save_checkpoint
from repro.persist.digest import canonical_bytes
from repro.query.ast import Aggregate, Comparison, Query, ValuePredicate
from repro.query.formatting import format_query
from repro.query.parser import parse_query
from repro.query.spatial import Circle, Everywhere, Rect

# ----------------------------------------------------------------------
# parse → format → parse
# ----------------------------------------------------------------------

#: Floats that survive the formatter's ``%g`` rendering exactly: scaled
#: integers stay within six significant digits.
def _centi(min_value: int, max_value: int):
    return st.integers(min_value, max_value).map(lambda n: n / 100)


_ATTRIBUTES = st.sampled_from(("value", "temperature", "humidity"))


@st.composite
def _regions(draw):
    choice = draw(st.integers(0, 2))
    if choice == 0:
        return Everywhere()
    if choice == 1:
        x_low, x_high = sorted((draw(_centi(-200, 200)), draw(_centi(-200, 200))))
        y_low, y_high = sorted((draw(_centi(-200, 200)), draw(_centi(-200, 200))))
        return Rect(x_low, y_low, x_high, y_high)
    return Circle(
        draw(_centi(-200, 200)), draw(_centi(-200, 200)), draw(_centi(1, 300))
    )


@st.composite
def snapshot_queries(draw) -> Query:
    """Generated ``USE SNAPSHOT`` queries spanning the whole dialect."""
    region = draw(_regions())
    predicate = draw(
        st.none()
        | st.builds(
            ValuePredicate,
            attribute=_ATTRIBUTES,
            op=st.sampled_from(list(Comparison)),
            constant=_centi(-99999, 99999),
        )
    )
    if draw(st.booleans()):
        sample_interval = float(draw(st.integers(1, 600)))
        duration = float(draw(st.integers(1, 120)) * 60)
    else:
        sample_interval = duration = None
    threshold = draw(st.none() | _centi(1, 5000))
    common = dict(
        region=region,
        value_predicate=predicate,
        sample_interval=sample_interval,
        duration=duration,
        use_snapshot=True,
        snapshot_threshold=threshold,
    )
    if draw(st.booleans()):
        return Query(
            select=(),
            aggregate=draw(st.sampled_from(list(Aggregate))),
            aggregate_attribute=draw(_ATTRIBUTES),
            **common,
        )
    select = draw(
        st.lists(
            st.sampled_from(("loc", "value", "temperature", "humidity")),
            min_size=1,
            max_size=3,
            unique=True,
        ).map(tuple)
    )
    return Query(select=select, **common)


@given(snapshot_queries())
@settings(max_examples=150, deadline=None)
def test_parse_format_parse_roundtrip(query):
    text = format_query(query)
    parsed = parse_query(text)
    assert parsed == query
    # and the text itself is a fixed point
    assert format_query(parsed) == text


# ----------------------------------------------------------------------
# checkpoint round-trips through disk
# ----------------------------------------------------------------------

_observations = st.lists(
    st.tuples(
        st.integers(0, 5),  # neighbor id
        st.floats(-1e6, 1e6, allow_nan=False, width=64),
        st.floats(-1e6, 1e6, allow_nan=False, width=64),
    ),
    min_size=1,
    max_size=120,
)


def _roundtrip(obj):
    """Save ``obj`` through the on-disk format and load it back."""
    with tempfile.TemporaryDirectory() as directory:
        path = os.path.join(directory, "obj.ckpt")
        save_checkpoint(obj, path)
        return load_checkpoint(path)


@given(_observations)
@settings(max_examples=40, deadline=None)
def test_regression_stats_roundtrip_is_exact(observations):
    stats = RegressionStats()
    for _, x, y in observations:
        stats.add(x, y)
    restored = _roundtrip(stats)
    assert canonical_bytes(restored.fit()) == canonical_bytes(stats.fit())
    assert restored.n == stats.n
    # continuing to feed both after the round trip stays bit-identical
    stats.add(1.5, -2.5)
    restored.add(1.5, -2.5)
    assert canonical_bytes(restored.fit()) == canonical_bytes(stats.fit())


@given(_observations, st.sampled_from([ModelAwareCache, RoundRobinCache]))
@settings(max_examples=40, deadline=None)
def test_cache_policy_roundtrip_is_exact(observations, policy_cls):
    cache = policy_cls(cache_bytes=256)  # small budget → evictions happen
    for neighbor, x, y in observations:
        cache.observe(neighbor, x, y)
    restored = _roundtrip(cache)

    from repro.persist.digest import _digest_policy

    assert _digest_policy(restored) == _digest_policy(cache)
    # the restored cache *behaves* identically under further traffic
    for neighbor, x, y in observations[:10]:
        assert cache.observe(neighbor, y, x) == restored.observe(neighbor, y, x)
    assert _digest_policy(restored) == _digest_policy(cache)
    for neighbor in cache.known_neighbors():
        line, restored_line = cache.line(neighbor), restored.line(neighbor)
        assert restored_line.pairs == line.pairs
        assert canonical_bytes(restored_line.stats.fit()) == canonical_bytes(
            line.stats.fit()
        )
