"""Equivalence tests for the O(1) sufficient-statistics cache rewrite.

Three guarantees are pinned down here:

1. **Numerical equivalence** — a line's incremental statistics, fit,
   benefit and eviction penalty match the batch formulas (``fit_line``,
   ``mean_sse_of_model``, ``no_answer_sse`` over the stored pairs)
   within 1e-9, or 1e-12 of the closed form's term magnitude where
   cancellation makes that the achievable bound (see
   ``sse_tolerance``), across random append/evict sequences, including
   the drift regime where evictions dominate (bounded by the periodic
   exact recompute every ``STATS_SYNC_INTERVAL`` evictions).
2. **Decision equivalence** — ``ModelAwareCache`` emits the identical
   reject/shift/augment/newcomer trace as a self-contained reference
   implementation of the old batch decision procedure, on seeded
   correlated streams.
3. **No copies on the hot path** — ``observe``/``benefit``/
   ``eviction_penalty``/``model`` never touch the copying ``pairs``
   property.
"""

from __future__ import annotations

import math
import random
from typing import Optional

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.cache import BYTES_PER_PAIR, STATS_SYNC_INTERVAL, CacheLine
from repro.models.cache_manager import ModelAwareCache
from repro.models.policy import Action
from repro.models.regression import (
    RegressionStats,
    fit_line,
    mean_sse_of_model,
    no_answer_sse,
)


def assert_close(a: float, b: float, tol: float = 1e-9) -> None:
    assert math.isclose(a, b, rel_tol=tol, abs_tol=tol), f"{a} != {b}"


def sse_tolerance(stats, model) -> float:
    """Absolute tolerance for closed-form sse quantities.

    The sufficient-statistics sse cancels at the scale of its largest
    term (``a²Σx²`` for steep lines on nearly-constant x), so the
    achievable absolute accuracy is ``eps`` *relative to that scale* —
    not an unconditional 1e-9.  1e-12 of the term magnitude leaves
    ~4 decimal digits of headroom over the worst-case rounding bound
    for 120-pair lines while staying far below any decision-relevant
    difference (the cache layer re-scores scale-relative ties batch-
    style anyway).
    """
    scale = (
        abs(stats.sum_yy)
        + model.slope * model.slope * abs(stats.sum_xx)
        + 2.0 * abs(model.slope * stats.sum_xy)
        + stats.n * model.intercept * model.intercept
    )
    return max(1e-9, 1e-12 * scale / max(stats.n, 1))


# -- batch reference formulas -------------------------------------------------


def batch_benefit(pairs: list[tuple[float, float]]) -> float:
    if not pairs:
        return 0.0
    return no_answer_sse(pairs) - mean_sse_of_model(pairs, fit_line(pairs))


def batch_eviction_penalty(pairs: list[tuple[float, float]]) -> float:
    """The pre-rewrite ``CacheLine.eviction_penalty`` formula, verbatim."""
    if not pairs:
        return 0.0
    full_benefit = batch_benefit(pairs)
    remaining = pairs[1:]
    if not remaining:
        return full_benefit
    reduced_model = fit_line(remaining)
    reduced_benefit = no_answer_sse(pairs) - mean_sse_of_model(pairs, reduced_model)
    return full_benefit - reduced_benefit


class TestRegressionStats:
    def test_add_matches_from_pairs(self):
        pairs = [(1.0, 2.0), (3.0, -1.0), (0.5, 0.25)]
        stats = RegressionStats()
        for pair in pairs:
            stats.add(*pair)
        batch = RegressionStats.from_pairs(pairs)
        for field in ("n", "sum_x", "sum_y", "sum_xx", "sum_xy", "sum_yy"):
            assert getattr(stats, field) == getattr(batch, field)

    def test_remove_inverts_add(self):
        stats = RegressionStats.from_pairs([(1.0, 2.0), (3.0, 4.0)])
        stats.add(5.0, 6.0)
        stats.remove(5.0, 6.0)
        batch = RegressionStats.from_pairs([(1.0, 2.0), (3.0, 4.0)])
        assert stats.n == batch.n
        assert_close(stats.sum_xy, batch.sum_xy)

    def test_remove_to_empty_snaps_to_zero(self):
        stats = RegressionStats.from_pairs([(0.1, 0.2)])
        stats.remove(0.1, 0.2)
        assert stats.n == 0
        assert stats.sum_x == 0.0 and stats.sum_yy == 0.0

    def test_remove_from_empty_raises(self):
        with pytest.raises(ValueError):
            RegressionStats().remove(1.0, 1.0)

    def test_with_without_do_not_mutate(self):
        stats = RegressionStats.from_pairs([(1.0, 1.0), (2.0, 2.0)])
        stats.with_pair(9.0, 9.0)
        stats.without_pair(1.0, 1.0)
        assert stats.n == 2
        assert stats.sum_x == 3.0

    def test_fit_matches_fit_line(self):
        pairs = [(0.0, 1.0), (1.0, 3.1), (2.0, 4.9), (3.0, 7.2)]
        incremental = RegressionStats.from_pairs(pairs).fit()
        batch = fit_line(pairs)
        assert_close(incremental.slope, batch.slope)
        assert_close(incremental.intercept, batch.intercept)

    def test_sse_matches_residual_sum(self):
        pairs = [(0.0, 1.0), (1.0, 3.1), (2.0, 4.9), (3.0, 7.2)]
        stats = RegressionStats.from_pairs(pairs)
        model = stats.fit()
        assert_close(stats.mean_sse(model), mean_sse_of_model(pairs, model))

    def test_empty_fit_raises(self):
        with pytest.raises(ValueError):
            RegressionStats().fit()


class TestIncrementalMatchesBatch:
    """Seeded property test: stats stay equivalent through append/evict."""

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["append", "evict"]),
                st.floats(min_value=-100, max_value=100, allow_nan=False),
                st.floats(min_value=-100, max_value=100, allow_nan=False),
            ),
            min_size=1,
            max_size=120,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_model_benefit_penalty_track_batch(self, operations):
        line = CacheLine(neighbor_id=0)
        for op, x, y in operations:
            if op == "evict" and len(line) > 0:
                line.evict_oldest()
            else:
                line.append(x, y)
            pairs = line.pairs
            if not pairs:
                continue
            batch_model = fit_line(pairs)
            model = line.model()
            tol = sse_tolerance(line.stats, model)
            assert_close(model.slope, batch_model.slope)
            assert_close(model.intercept, batch_model.intercept)
            assert_close(
                line.stats.mean_sse(model),
                mean_sse_of_model(pairs, batch_model),
                tol=tol,
            )
            assert_close(line.benefit(), batch_benefit(pairs), tol=tol)
            assert_close(
                line.eviction_penalty(), batch_eviction_penalty(pairs), tol=tol
            )

    def test_drift_stays_bounded_through_heavy_eviction(self):
        """Thousands of shift cycles (each an eviction-subtraction) on a
        large-amplitude line: the periodic exact recompute keeps the
        incremental quantities within 1e-9 of the batch formulas."""
        rng = random.Random(7)
        line = CacheLine(neighbor_id=0)
        value = 1000.0
        for _ in range(32):
            value += rng.gauss(0.0, 10.0)
            line.append(value, 0.9 * value + rng.gauss(0.0, 5.0))
        evictions = 0
        for _ in range(5000):
            value += rng.gauss(0.0, 10.0)
            line.evict_oldest()
            line.append(value, 0.9 * value + rng.gauss(0.0, 5.0))
            evictions += 1
            if evictions % 500 == 0:
                pairs = line.pairs
                assert_close(line.benefit(), batch_benefit(pairs))
                assert_close(line.eviction_penalty(), batch_eviction_penalty(pairs))
                exact = RegressionStats.from_pairs(pairs)
                assert_close(line.stats.sum_xy, exact.sum_xy, tol=1e-9)

    def test_sync_counter_resets_after_interval(self):
        line = CacheLine(neighbor_id=0)
        for i in range(STATS_SYNC_INTERVAL + 8):
            line.append(float(i), float(i))
        for _ in range(STATS_SYNC_INTERVAL):
            line.evict_oldest()
        assert line._evictions_since_sync == 0  # exact recompute happened


# -- golden decision trace ----------------------------------------------------


class _BatchReferenceCache:
    """The pre-rewrite §4 decision procedure, verbatim, over plain lists.

    Batch refits of current/shifted/augmented candidates, a full sorted
    scan for the cheapest victim, and the same round-robin newcomer
    rule — the golden reference the O(1) rewrite must reproduce.
    """

    def __init__(self, capacity_pairs: int) -> None:
        self.capacity = capacity_pairs
        self.lines: dict[int, list[tuple[float, float]]] = {}
        self.rr_cursor = -1

    def total_pairs(self) -> int:
        return sum(len(pairs) for pairs in self.lines.values())

    def observe(self, neighbor_id: int, own: float, neighbor: float) -> str:
        pair = (float(own), float(neighbor))
        if self.total_pairs() < self.capacity:
            self.lines.setdefault(neighbor_id, []).append(pair)
            return Action.APPEND
        line = self.lines.get(neighbor_id)
        if not line:
            return self._admit_newcomer(neighbor_id, pair)
        return self._decide(neighbor_id, line, pair)

    def _decide(self, neighbor_id, line, pair) -> str:
        augmented = line + [pair]
        shifted = line[1:] + [pair]
        baseline = no_answer_sse(augmented)
        benefit_current = baseline - mean_sse_of_model(augmented, fit_line(line))
        benefit_shift = baseline - mean_sse_of_model(augmented, fit_line(shifted))
        benefit_augment = baseline - mean_sse_of_model(augmented, fit_line(augmented))
        if benefit_current >= benefit_shift and benefit_current >= benefit_augment:
            return Action.REJECT
        if benefit_shift >= benefit_augment:
            self.lines[neighbor_id] = shifted
            return Action.SHIFT
        gain = benefit_augment - benefit_shift
        victim = self._cheapest_victim(exclude=neighbor_id, below=gain)
        if victim is not None:
            self._evict_from(victim)
            self.lines[neighbor_id] = augmented
            return Action.AUGMENT
        if benefit_shift > benefit_current:
            self.lines[neighbor_id] = shifted
            return Action.SHIFT
        return Action.REJECT

    def _cheapest_victim(self, exclude: int, below: float) -> Optional[int]:
        best_id: Optional[int] = None
        best_penalty = below
        for k in sorted(self.lines):
            if k == exclude or not self.lines[k]:
                continue
            penalty = batch_eviction_penalty(self.lines[k])
            if penalty < best_penalty:
                best_penalty = penalty
                best_id = k
        return best_id

    def _evict_from(self, neighbor_id: int) -> None:
        self.lines[neighbor_id].pop(0)
        if not self.lines[neighbor_id]:
            del self.lines[neighbor_id]

    def _admit_newcomer(self, neighbor_id: int, pair) -> str:
        candidates = sorted(
            k for k, pairs in self.lines.items() if k != neighbor_id and pairs
        )
        if not candidates:
            return Action.REJECT
        victim = next((k for k in candidates if k > self.rr_cursor), candidates[0])
        self.rr_cursor = victim
        self._evict_from(victim)
        self.lines.setdefault(neighbor_id, []).append(pair)
        return Action.NEWCOMER


def correlated_stream(length: int, neighbors: int, seed: int):
    rng = random.Random(seed)
    own = 0.0
    walks = {j: rng.uniform(-5.0, 5.0) for j in range(neighbors)}
    stream = []
    for _ in range(length):
        own += rng.gauss(0.0, 1.0)
        j = rng.randrange(neighbors)
        walks[j] += rng.gauss(0.0, 1.0)
        stream.append((j, own, 0.8 * own + walks[j]))
    return stream


class TestGoldenDecisionTrace:
    @pytest.mark.parametrize(
        "capacity,neighbors,seed",
        [(2, 3, 1), (4, 4, 2), (8, 5, 3), (16, 5, 4), (32, 6, 5)],
    )
    def test_trace_identical_to_batch_reference(self, capacity, neighbors, seed):
        cache = ModelAwareCache(BYTES_PER_PAIR * capacity)
        reference = _BatchReferenceCache(capacity)
        stream = correlated_stream(1200, neighbors, seed)
        for step, (j, x, y) in enumerate(stream):
            got = cache.observe(j, x, y)
            expected = reference.observe(j, x, y)
            assert got == expected, f"step {step}: {got} != {expected}"
        # identical traces imply identical stored pairs, line by line
        assert sorted(reference.lines) == cache.known_neighbors()
        for k, pairs in reference.lines.items():
            assert cache.line(k).pairs == pairs

    def test_trace_identical_on_tie_heavy_stream(self):
        """Exact floating-point ties must resolve exactly as batch did.

        Collinear, integer-valued observations make the shift and
        augment candidates score *identically* (and eviction penalties
        exactly zero), so the decision rests entirely on the strict
        ``>=`` comparisons and the smallest-id victim tie-break.  The
        closed-form scores carry ~1e-11 relative noise, which would
        break these ties arbitrarily without the batch-style near-tie
        re-scoring — the random-walk streams above never produce them,
        but the simulation pipeline hits them constantly.
        """
        capacity, neighbors = 8, 4
        rng = random.Random(77)
        cache = ModelAwareCache(BYTES_PER_PAIR * capacity)
        reference = _BatchReferenceCache(capacity)
        for step in range(1500):
            j = rng.randrange(neighbors)
            x = float(rng.randrange(1, 9))
            if rng.random() < 0.8:
                y = (j + 2.0) * x  # exactly collinear per neighbor
            else:
                y = float(rng.randrange(1, 50))
            got = cache.observe(j, x, y)
            expected = reference.observe(j, x, y)
            assert got == expected, f"step {step}: {got} != {expected}"
        assert sorted(reference.lines) == cache.known_neighbors()
        for k, pairs in reference.lines.items():
            assert cache.line(k).pairs == pairs

    def test_collinear_line_penalty_is_exact_zero(self):
        """Removing the oldest of a collinear line costs exactly nothing —
        the zero must be exact (victim ordering breaks ties on it)."""
        line = CacheLine(0)
        for x in (1.0, 2.0, 3.0, 4.0):
            line.append(x, 3.0 * x)
        assert line.eviction_penalty() == 0.0

    def test_trace_exercises_every_action(self):
        """The golden streams must actually cover the decision space."""
        seen: set[str] = set()
        for capacity, neighbors, seed in [(2, 3, 1), (8, 5, 3), (32, 6, 5)]:
            cache = ModelAwareCache(BYTES_PER_PAIR * capacity)
            for j, x, y in correlated_stream(1200, neighbors, seed):
                seen.add(cache.observe(j, x, y))
        assert seen == set(Action.ALL)


class TestNoPairCopiesOnHotPath:
    def test_no_pair_copies_on_hot_path(self, monkeypatch):
        """observe/benefit/eviction_penalty/model must never materialize
        the pair list; the copying ``pairs`` property is diagnostics-only."""
        copies = {"count": 0}
        original = CacheLine.pairs.fget

        def counting_pairs(self):
            copies["count"] += 1
            return original(self)

        monkeypatch.setattr(CacheLine, "pairs", property(counting_pairs))
        cache = ModelAwareCache(BYTES_PER_PAIR * 16)
        for j, x, y in correlated_stream(800, 4, seed=9):
            cache.observe(j, x, y)
            line = cache.line(j)
            if line is not None:
                line.benefit()
                line.eviction_penalty()
                line.model()
        assert copies["count"] == 0

    def test_policy_pair_count_stays_exact(self):
        """The O(1) total_pairs counter never drifts from ground truth."""
        cache = ModelAwareCache(BYTES_PER_PAIR * 8)
        for step, (j, x, y) in enumerate(correlated_stream(600, 5, seed=11)):
            cache.observe(j, x, y)
            if step % 97 == 0:
                cache.forget(j)
            assert cache.total_pairs == sum(
                len(cache.line(k)) for k in cache.known_neighbors()
            )
