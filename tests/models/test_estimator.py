"""Tests for the per-node model store facade."""

from __future__ import annotations

import pytest

from repro.models.cache import BYTES_PER_PAIR
from repro.models.cache_manager import ModelAwareCache
from repro.models.estimator import NeighborModelStore
from repro.models.metrics import SumSquaredError


def make_store(pairs: int = 16, n_measurements: int = 1) -> NeighborModelStore:
    return NeighborModelStore(
        ModelAwareCache(BYTES_PER_PAIR * pairs), n_measurements=n_measurements
    )


class TestEstimation:
    def test_no_history_no_estimate(self):
        store = make_store()
        assert store.estimate(3, own_value=1.0) is None
        assert store.model(3) is None

    def test_linear_neighbor_estimated(self):
        store = make_store()
        for x in range(5):
            store.record(3, own_value=float(x), neighbor_value=2.0 * x + 1.0)
        assert store.estimate(3, own_value=10.0) == pytest.approx(21.0)

    def test_can_represent_uses_metric_and_threshold(self):
        store = make_store()
        metric = SumSquaredError()
        for x in range(5):
            store.record(3, float(x), 2.0 * x)
        assert store.can_represent(3, neighbor_value=20.0, own_value=10.0,
                                   metric=metric, threshold=0.01)
        assert not store.can_represent(3, neighbor_value=25.0, own_value=10.0,
                                       metric=metric, threshold=0.01)

    def test_can_represent_false_without_model(self):
        store = make_store()
        assert not store.can_represent(
            9, 1.0, 1.0, metric=SumSquaredError(), threshold=1e9
        )

    def test_known_neighbors(self):
        store = make_store()
        store.record(5, 0.0, 1.0)
        store.record(2, 0.0, 1.0)
        assert store.known_neighbors() == [2, 5]

    def test_forget(self):
        store = make_store()
        store.record(5, 0.0, 1.0)
        store.forget(5)
        assert store.estimate(5, 0.0) is None


class TestMultiMeasurement:
    def test_measurements_keyed_separately(self):
        store = make_store(n_measurements=2)
        for x in range(4):
            store.record(1, float(x), 10.0 + x, measurement_id=0)
            store.record(1, float(x), -5.0 * x, measurement_id=1)
        assert store.estimate(1, 2.0, measurement_id=0) == pytest.approx(12.0)
        assert store.estimate(1, 2.0, measurement_id=1) == pytest.approx(-10.0)

    def test_out_of_range_measurement_rejected(self):
        store = make_store(n_measurements=2)
        with pytest.raises(ValueError):
            store.record(1, 0.0, 1.0, measurement_id=2)

    def test_known_neighbors_filters_by_measurement(self):
        store = make_store(n_measurements=2)
        store.record(4, 0.0, 1.0, measurement_id=1)
        assert store.known_neighbors(measurement_id=0) == []
        assert store.known_neighbors(measurement_id=1) == [4]

    def test_invalid_n_measurements(self):
        with pytest.raises(ValueError):
            NeighborModelStore(ModelAwareCache(64), n_measurements=0)
