"""Tests for Lemma 1: least-squares line fitting.

The property-based tests cross-check the closed form against
scipy.stats.linregress and verify optimality directly (no nearby line
achieves a lower sse).
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.stats
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.models.regression import (
    LinearModel,
    fit_line,
    mean_sse_of_model,
    no_answer_sse,
    sse_of_model,
)

coordinate = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
)
pair_lists = st.lists(st.tuples(coordinate, coordinate), min_size=2, max_size=40)


class TestLinearModel:
    def test_predict(self):
        model = LinearModel(slope=2.0, intercept=1.0)
        assert model.predict(3.0) == 7.0

    def test_unpacking(self):
        a, b = LinearModel(slope=2.0, intercept=1.0)
        assert (a, b) == (2.0, 1.0)


class TestFitLine:
    def test_exact_line_recovered(self):
        pairs = [(x, 3.0 * x + 2.0) for x in (0.0, 1.0, 2.0, 5.0)]
        model = fit_line(pairs)
        assert model.slope == pytest.approx(3.0)
        assert model.intercept == pytest.approx(2.0)

    def test_single_pair_constant_model(self):
        model = fit_line([(4.0, 9.0)])
        assert model.slope == 0.0
        assert model.intercept == 9.0

    def test_constant_x_uses_mean_of_y(self):
        model = fit_line([(2.0, 1.0), (2.0, 3.0), (2.0, 8.0)])
        assert model.slope == 0.0
        assert model.intercept == pytest.approx(4.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fit_line([])

    @given(pair_lists)
    @settings(max_examples=60)
    def test_matches_scipy(self, pairs):
        xs = np.array([p[0] for p in pairs])
        ys = np.array([p[1] for p in pairs])
        assume(np.ptp(xs) > 1e-6)
        expected = scipy.stats.linregress(xs, ys)
        model = fit_line(pairs)
        scale = max(1.0, abs(expected.slope), abs(expected.intercept))
        assert model.slope == pytest.approx(expected.slope, abs=1e-6 * scale)
        assert model.intercept == pytest.approx(expected.intercept, abs=1e-6 * scale)

    @given(
        pair_lists,
        st.floats(min_value=-1.0, max_value=1.0),
        st.floats(min_value=-1.0, max_value=1.0),
    )
    @settings(max_examples=60)
    def test_optimality(self, pairs, slope_nudge, intercept_nudge):
        """No perturbed line beats the fitted one (Lemma 1's claim)."""
        model = fit_line(pairs)
        perturbed = LinearModel(
            slope=model.slope + slope_nudge, intercept=model.intercept + intercept_nudge
        )
        fitted_sse = sse_of_model(pairs, model)
        perturbed_sse = sse_of_model(pairs, perturbed)
        assert fitted_sse <= perturbed_sse + 1e-6 * max(1.0, perturbed_sse)


class TestErrorHelpers:
    def test_sse_of_model(self):
        pairs = [(0.0, 1.0), (1.0, 3.0)]
        model = LinearModel(slope=0.0, intercept=0.0)
        assert sse_of_model(pairs, model) == pytest.approx(10.0)

    def test_mean_sse(self):
        pairs = [(0.0, 1.0), (1.0, 3.0)]
        model = LinearModel(slope=0.0, intercept=0.0)
        assert mean_sse_of_model(pairs, model) == pytest.approx(5.0)

    def test_mean_sse_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_sse_of_model([], LinearModel(0.0, 0.0))

    def test_no_answer_sse_is_zero_estimate(self):
        pairs = [(9.0, 2.0), (9.0, -4.0)]
        assert no_answer_sse(pairs) == pytest.approx((4.0 + 16.0) / 2)

    def test_no_answer_sse_empty_rejected(self):
        with pytest.raises(ValueError):
            no_answer_sse([])

    @given(pair_lists)
    @settings(max_examples=40)
    def test_fitted_beats_no_answer_when_useful(self, pairs):
        """benefit = no_answer - fitted sse is at least the zero-line gap."""
        model = fit_line(pairs)
        fitted = mean_sse_of_model(pairs, model)
        zero_line = mean_sse_of_model(pairs, LinearModel(0.0, 0.0))
        assert fitted <= zero_line + 1e-6 * max(1.0, zero_line)
        assert no_answer_sse(pairs) == pytest.approx(zero_line)
