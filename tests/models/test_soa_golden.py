"""Golden-trace equivalence of the three model-aware cache engines.

The scalar object-graph path (``vectorized=False``), the per-node
struct-of-arrays block (``vectorized=True``, the default) and the
cross-cache numpy fleet must make the *same decision on every
observation* and hold *bit-identical state* afterwards — that is the
contract that lets the fast engines replace the reference one under the
pinned trajectory/digest tests.  Streams are the correlated neighbor
walks the perf bench uses, long enough to cross the
``STATS_SYNC_INTERVAL`` drift-resync boundary many times and to hit
every action (append, newcomer, shift, augment, reject) plus dominant
evictions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.cache import BYTES_PER_PAIR, STATS_SYNC_INTERVAL
from repro.models.cache_manager import ModelAwareCache
from repro.models.soa import ACTION_NAMES, ModelAwareCacheFleet
from repro.persist.digest import canonical_bytes


def correlated_stream(length: int, neighbors: int = 8, seed: int = 42):
    """(neighbor_id, own_value, neighbor_value) triples, bench-style."""
    rng = np.random.default_rng(seed)
    slopes = rng.uniform(0.5, 2.0, size=neighbors)
    intercepts = rng.uniform(-5.0, 5.0, size=neighbors)
    own = np.cumsum(rng.normal(0.0, 1.0, size=length)) + 20.0
    ids = rng.integers(0, neighbors, size=length)
    noise = rng.normal(0.0, 0.5, size=length)
    out = []
    for k in range(length):
        j = int(ids[k])
        x = float(own[k])
        out.append((j, x, float(slopes[j] * x + intercepts[j] + noise[k])))
    return out


def adversarial_stream(length: int, neighbors: int, seed: int):
    """A stream engineered to hit dominant evictions and exact ties."""
    rng = np.random.default_rng(seed)
    out = []
    for k in range(length):
        j = int(rng.integers(0, neighbors))
        kind = rng.integers(0, 4)
        if kind == 0:  # huge outlier → dominant-sum evictions later
            x = float(rng.choice([-1.0, 1.0]) * rng.uniform(1e3, 1e5))
            y = x * 2.0
        elif kind == 1:  # exactly collinear → zero penalties, exact ties
            x = float(k % 7)
            y = 3.0 * x + 1.0
        elif kind == 2:  # tiny noise near zero
            x = float(rng.normal(0.0, 1e-3))
            y = float(rng.normal(0.0, 1e-3))
        else:
            x = float(rng.normal(0.0, 10.0))
            y = float(rng.normal(0.0, 10.0))
        out.append((j, x, y))
    return out


def block_state(cache: ModelAwareCache) -> dict:
    """Engine-independent canonical state of a ModelAwareCache."""
    lines = {}
    for j in cache.known_neighbors():
        line = cache.line(j)
        st = line.stats
        lines[j] = (
            tuple(line.pairs),
            (st.n, st.sum_x, st.sum_y, st.sum_xx, st.sum_xy, st.sum_yy),
            line.evictions_since_sync,
        )
    block = cache._block
    cursor = block.rr_cursor if block is not None else cache._rr_cursor
    return {"lines": lines, "total": cache.total_pairs, "rr_cursor": cursor}


@pytest.mark.parametrize("stream_fn,seed", [
    (correlated_stream, 42),
    (correlated_stream, 7),
    (adversarial_stream, 3),
])
@pytest.mark.parametrize("capacity", [8, 48])
def test_scalar_and_block_bitwise_identical(stream_fn, seed, capacity):
    scalar = ModelAwareCache(BYTES_PER_PAIR * capacity, vectorized=False)
    block = ModelAwareCache(BYTES_PER_PAIR * capacity, vectorized=True)
    stream = (
        stream_fn(3000, 6, seed)
        if stream_fn is adversarial_stream
        else stream_fn(3000, neighbors=6, seed=seed)
    )
    evictions_seen = 0
    for step, (j, x, y) in enumerate(stream):
        a_s = scalar.observe(j, x, y)
        a_b = block.observe(j, x, y)
        assert a_s == a_b, f"step {step}: scalar={a_s} block={a_b}"
        if a_s in ("shift", "augment", "newcomer"):
            evictions_seen += 1
        if step % 500 == 0:
            # canonical_bytes is bitwise-strict (distinguishes -0.0/0.0)
            assert canonical_bytes(block_state(block)) == canonical_bytes(
                block_state(scalar)
            ), f"state diverged by step {step}"
    assert canonical_bytes(block.digest_state()) == canonical_bytes(
        scalar.digest_state()
    )
    # the run exercised the drift-resync boundary, not just steady state
    assert evictions_seen > STATS_SYNC_INTERVAL


def test_scalar_and_block_agree_on_benefit_penalty_columns():
    """Every memoized §4 quantity matches the scalar value exactly."""
    scalar = ModelAwareCache(BYTES_PER_PAIR * 24, vectorized=False)
    block = ModelAwareCache(BYTES_PER_PAIR * 24, vectorized=True)
    for j, x, y in correlated_stream(1500, neighbors=5, seed=11):
        assert scalar.observe(j, x, y) == block.observe(j, x, y)
    assert scalar.known_neighbors() == block.known_neighbors()
    for j in scalar.known_neighbors():
        ls, lb = scalar.line(j), block.line(j)
        assert ls.model_coefficients() == lb.model_coefficients()
        assert ls.benefit() == lb.benefit()
        assert ls.eviction_penalty() == lb.eviction_penalty()
        assert ls.stats.fit() == lb.stats.fit()


def test_forget_matches_across_engines():
    scalar = ModelAwareCache(BYTES_PER_PAIR * 16, vectorized=False)
    block = ModelAwareCache(BYTES_PER_PAIR * 16, vectorized=True)
    stream = correlated_stream(600, neighbors=5, seed=23)
    for step, (j, x, y) in enumerate(stream):
        assert scalar.observe(j, x, y) == block.observe(j, x, y)
        if step in (100, 350):
            scalar.forget(2)
            block.forget(2)
            assert canonical_bytes(block_state(block)) == canonical_bytes(
                block_state(scalar)
            )
    assert canonical_bytes(block.digest_state()) == canonical_bytes(
        scalar.digest_state()
    )


@pytest.mark.parametrize("n_caches,steps,cache_bytes", [(64, 1000, 128)])
def test_fleet_bitwise_identical_to_scalar(n_caches, steps, cache_bytes):
    """Every lane of the fleet replays its scalar reference exactly.

    64 independent caches × 1000 lock-step batches: per-step actions
    and the complete final state (pairs, sums, resync counters, cursor)
    must match a scalar ``ModelAwareCache`` fed the same per-lane
    stream.  Small capacity forces heavy eviction traffic across the
    ``STATS_SYNC_INTERVAL`` boundary in every lane.
    """
    refs = [
        ModelAwareCache(cache_bytes, vectorized=False) for _ in range(n_caches)
    ]
    fleet = ModelAwareCacheFleet(
        n_caches, cache_bytes, max_lines=8, ring_cap=32
    )
    streams = [
        correlated_stream(steps, neighbors=6, seed=1000 + c)
        for c in range(n_caches)
    ]
    for t in range(steps):
        js = np.array([streams[c][t][0] for c in range(n_caches)])
        xs = np.array([streams[c][t][1] for c in range(n_caches)])
        ys = np.array([streams[c][t][2] for c in range(n_caches)])
        codes = fleet.observe_batch(js, xs, ys)
        for c in range(n_caches):
            expected = refs[c].observe(int(js[c]), float(xs[c]), float(ys[c]))
            got = ACTION_NAMES[int(codes[c])]
            assert got == expected, f"lane {c} step {t}: {got} != {expected}"
    for c in range(n_caches):
        want = block_state(refs[c])
        assert canonical_bytes(fleet.cache_state(c)) == canonical_bytes(want), (
            f"lane {c} final state diverged"
        )


def test_fleet_ring_growth_preserves_state():
    """Ring doubling mid-run is a pure relayout: lanes keep matching."""
    n_caches = 8
    refs = [ModelAwareCache(512, vectorized=False) for _ in range(n_caches)]
    fleet = ModelAwareCacheFleet(n_caches, 512, max_lines=4, ring_cap=4)
    streams = [
        correlated_stream(400, neighbors=3, seed=50 + c) for c in range(n_caches)
    ]
    grew = False
    for t in range(400):
        js = np.array([streams[c][t][0] for c in range(n_caches)])
        xs = np.array([streams[c][t][1] for c in range(n_caches)])
        ys = np.array([streams[c][t][2] for c in range(n_caches)])
        codes = fleet.observe_batch(js, xs, ys)
        if fleet.C > 4:
            grew = True
        for c in range(n_caches):
            assert ACTION_NAMES[int(codes[c])] == refs[c].observe(
                int(js[c]), float(xs[c]), float(ys[c])
            )
    assert grew, "test never exercised _grow_rings"
    for c in range(n_caches):
        assert canonical_bytes(fleet.cache_state(c)) == canonical_bytes(
            block_state(refs[c])
        )
