"""Unit tests for error metrics (§3)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.models.metrics import (
    AbsoluteError,
    RelativeError,
    SumSquaredError,
    metric_by_name,
)

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestSumSquaredError:
    def test_basic(self):
        assert SumSquaredError()(3.0, 1.0) == 4.0

    def test_zero_for_exact(self):
        assert SumSquaredError()(5.0, 5.0) == 0.0

    @given(finite, finite)
    def test_symmetric_and_nonnegative(self, a, b):
        metric = SumSquaredError()
        assert metric(a, b) >= 0.0
        assert metric(a, b) == metric(b, a)


class TestAbsoluteError:
    def test_basic(self):
        assert AbsoluteError()(3.0, 1.0) == 2.0

    @given(finite, finite)
    def test_matches_abs(self, a, b):
        assert AbsoluteError()(a, b) == abs(a - b)


class TestRelativeError:
    def test_sanity_bound_guards_zero(self):
        metric = RelativeError(sanity_bound=0.5)
        assert metric(0.0, 1.0) == pytest.approx(2.0)

    def test_large_actual_dominates_bound(self):
        metric = RelativeError(sanity_bound=0.5)
        assert metric(10.0, 9.0) == pytest.approx(0.1)

    def test_nonpositive_bound_rejected(self):
        with pytest.raises(ValueError):
            RelativeError(sanity_bound=0.0)

    @given(finite, finite)
    def test_nonnegative(self, a, b):
        assert RelativeError(sanity_bound=1.0)(a, b) >= 0.0


class TestWithin:
    def test_within_inclusive(self):
        metric = SumSquaredError()
        assert metric.within(2.0, 1.0, threshold=1.0)
        assert not metric.within(2.0, 0.5, threshold=1.0)

    @given(finite, finite, st.floats(min_value=0, max_value=1e6))
    def test_within_consistent_with_call(self, a, b, threshold):
        metric = AbsoluteError()
        assert metric.within(a, b, threshold) == (metric(a, b) <= threshold)


class TestRegistry:
    @pytest.mark.parametrize("name", ["sse", "absolute", "relative"])
    def test_lookup(self, name):
        assert metric_by_name(name).name == name

    def test_kwargs_forwarded(self):
        metric = metric_by_name("relative", sanity_bound=2.0)
        assert metric.sanity_bound == 2.0

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown metric"):
            metric_by_name("l2")
