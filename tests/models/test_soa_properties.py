"""Property tests: struct-of-arrays engines vs the scalar reference.

Hypothesis drives adversarial observation streams — mixed magnitudes
(1e-6 … 1e6, so dominant-sum evictions happen), repeated/collinear
values (exact floating-point ties), tiny neighbor pools and tiny
capacities (dense eviction traffic crossing the
``STATS_SYNC_INTERVAL`` resync boundary) — and asserts the batched
sufficient-sum updates, the centered-moment SSE quantities and the
benefit/penalty columns agree with the scalar implementation to exact
float equality, decision-for-decision.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.cache import BYTES_PER_PAIR, STATS_SYNC_INTERVAL
from repro.models.cache_manager import ModelAwareCache
from repro.models.soa import ACTION_NAMES, ModelAwareCacheFleet, NeighborBlock
from repro.persist.digest import canonical_bytes

#: Adversarial values: exponents spanning twelve orders of magnitude so
#: a single pair can dominate a running sum, plus exact small integers
#: for reproducible collinearity.
_values = st.one_of(
    st.floats(-1e6, 1e6, allow_nan=False, width=64),
    st.floats(-1e-6, 1e-6, allow_nan=False, width=64),
    st.integers(-5, 5).map(float),
)

_observations = st.lists(
    st.tuples(st.integers(0, 4), _values, _values),
    min_size=1,
    max_size=300,
)


def _state(cache: ModelAwareCache) -> bytes:
    return canonical_bytes(cache.digest_state())


@given(_observations, st.integers(4, 24))
@settings(max_examples=120, deadline=None)
def test_block_matches_scalar_decision_for_decision(observations, capacity):
    scalar = ModelAwareCache(BYTES_PER_PAIR * capacity, vectorized=False)
    block = ModelAwareCache(BYTES_PER_PAIR * capacity, vectorized=True)
    for j, x, y in observations:
        assert scalar.observe(j, x, y) == block.observe(j, x, y)
    assert _state(block) == _state(scalar)
    # every memoized column agrees exactly after the stream
    for j in scalar.known_neighbors():
        ls, lb = scalar.line(j), block.line(j)
        assert ls.benefit() == lb.benefit()
        assert ls.eviction_penalty() == lb.eviction_penalty()
        assert ls.model_coefficients() == lb.model_coefficients()


@given(_observations)
@settings(max_examples=60, deadline=None)
def test_block_sums_are_bitwise_scalar_sums(observations):
    """Batched sufficient-sum maintenance ≡ RegressionStats add/remove."""
    scalar = ModelAwareCache(BYTES_PER_PAIR * 8, vectorized=False)
    block = ModelAwareCache(BYTES_PER_PAIR * 8, vectorized=True)
    for j, x, y in observations:
        scalar.observe(j, x, y)
        block.observe(j, x, y)
        for k in scalar.known_neighbors():
            ss, bs = scalar.line(k).stats, block.line(k).stats
            assert canonical_bytes(
                (ss.n, ss.sum_x, ss.sum_y, ss.sum_xx, ss.sum_xy, ss.sum_yy)
            ) == canonical_bytes(
                (bs.n, bs.sum_x, bs.sum_y, bs.sum_xx, bs.sum_xy, bs.sum_yy)
            )


@given(st.integers(0, 2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_resync_boundary_crossing_stays_identical(seed):
    """Streams long enough to force > STATS_SYNC_INTERVAL evictions per
    line keep the engines identical through the periodic exact resync."""
    rng = np.random.default_rng(seed)
    capacity = 6  # tiny: almost every observation evicts something
    scalar = ModelAwareCache(BYTES_PER_PAIR * capacity, vectorized=False)
    block = ModelAwareCache(BYTES_PER_PAIR * capacity, vectorized=True)
    evictions = 0
    for _ in range(3 * STATS_SYNC_INTERVAL):
        j = int(rng.integers(0, 3))
        x = float(rng.normal(0.0, 100.0))
        y = float(rng.normal(0.0, 100.0))
        a = scalar.observe(j, x, y)
        assert a == block.observe(j, x, y)
        evictions += a in ("shift", "augment", "newcomer")
    assert evictions >= STATS_SYNC_INTERVAL
    assert _state(block) == _state(scalar)


@given(_observations, st.integers(4, 16))
@settings(max_examples=60, deadline=None)
def test_fleet_lane_matches_scalar(observations, capacity):
    """A one-lane fleet driven through observe_batch replays the scalar
    reference exactly (the vectorized kernel, not just the scalar
    fallbacks, once the cache fills)."""
    scalar = ModelAwareCache(BYTES_PER_PAIR * capacity, vectorized=False)
    fleet = ModelAwareCacheFleet(
        1, BYTES_PER_PAIR * capacity, max_lines=8, ring_cap=8
    )
    for j, x, y in observations:
        code = fleet.observe_batch(
            np.array([j]), np.array([x]), np.array([y])
        )[0]
        assert ACTION_NAMES[int(code)] == scalar.observe(j, x, y)
    want = {
        "lines": {
            j: (
                tuple(scalar.line(j).pairs),
                (
                    scalar.line(j).stats.n,
                    scalar.line(j).stats.sum_x,
                    scalar.line(j).stats.sum_y,
                    scalar.line(j).stats.sum_xx,
                    scalar.line(j).stats.sum_xy,
                    scalar.line(j).stats.sum_yy,
                ),
                scalar.line(j).evictions_since_sync,
            )
            for j in scalar.known_neighbors()
        },
        "total": scalar.total_pairs,
        "rr_cursor": scalar._rr_cursor,
    }
    assert canonical_bytes(fleet.cache_state(0)) == canonical_bytes(want)


@given(_observations)
@settings(max_examples=40, deadline=None)
def test_block_as_arrays_matches_line_sums(observations):
    """The numpy column snapshot is exactly the per-line sums."""
    block = NeighborBlock(BYTES_PER_PAIR * 12)
    for j, x, y in observations:
        block.observe(j, x, y)
    arrays = block.as_arrays()
    ids = arrays["ids"].tolist()
    assert ids == block.neighbor_ids()
    for k, j in enumerate(ids):
        r = block.row_of(j)
        n, sx, sy, sxx, sxy, syy = block.sums(r)
        assert arrays["n"][k] == n
        assert arrays["sx"][k] == sx and arrays["sy"][k] == sy
        assert arrays["sxx"][k] == sxx
        assert arrays["sxy"][k] == sxy and arrays["syy"][k] == syy
