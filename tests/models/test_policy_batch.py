"""Batch parity for cache policies and the fleet's lane sweep.

Three layers of the batched-rounds equivalence argument, pinned at the
model level:

* ``CachePolicy.observe_batch`` equals the loop of scalar ``observe``
  calls for *both* policies (within one cache, observations are
  order-dependent, so the batch is defined as the loop);
* ``ModelAwareCacheFleet.observe_lanes`` — the kernel the
  ``BatchedObservationRouter`` sweeps per wave — equals per-lane scalar
  application, wave order interleaved arbitrarily across lanes;
* lane retire / re-add (the fleet-level shape of a node crash and
  revival) leaves the reused lane behaving exactly like a fresh scalar
  cache while untouched lanes stay on their scalar twins' trajectory.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.cache import BYTES_PER_PAIR
from repro.models.cache_manager import ModelAwareCache
from repro.models.round_robin import RoundRobinCache
from repro.models.soa import ACTION_NAMES, ModelAwareCacheFleet

BUDGET = BYTES_PER_PAIR * 24
#: Neighbor-id universe; kept within the fleet's ``max_lines`` so a
#: lane can always hold one line per distinct key (the invariant the
#: runtime's fleet sizing guarantees: lines = min(in-degree, capacity)).
MAX_LINES = 6

_value = st.floats(-50.0, 50.0, allow_nan=False, allow_infinity=False)
_sample = st.tuples(st.integers(0, MAX_LINES - 1), _value, _value)
_stream = st.lists(_sample, min_size=1, max_size=120)


@given(stream=_stream)
@settings(max_examples=40, deadline=None)
def test_observe_batch_equals_scalar_loop(stream):
    js = [s[0] for s in stream]
    xs = [s[1] for s in stream]
    ys = [s[2] for s in stream]
    for factory in (
        lambda: ModelAwareCache(BUDGET),
        lambda: RoundRobinCache(BUDGET),
    ):
        batched, scalar = factory(), factory()
        got = batched.observe_batch(js, xs, ys)
        want = [scalar.observe(j, x, y) for j, x, y in stream]
        assert got == want
        assert batched.digest_state() == scalar.digest_state()


def _fleet_with_twins(n_lanes):
    """A fleet plus (fleet-backed, scalar) ModelAwareCache pairs per lane."""
    fleet = ModelAwareCacheFleet(
        n_lanes, BUDGET, max_lines=MAX_LINES, ring_cap=4
    )
    backed, twins = [], []
    for lane in range(n_lanes):
        cache = ModelAwareCache(BUDGET)
        cache.bind_fleet(fleet, lane)
        backed.append(cache)
        twins.append(ModelAwareCache(BUDGET))
    return fleet, backed, twins


@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_fleet_lane_sweep_matches_scalar_with_retires(data):
    n_lanes = data.draw(st.integers(2, 5), label="n_lanes")
    fleet, backed, twins = _fleet_with_twins(n_lanes)
    n_waves = data.draw(st.integers(1, 15), label="n_waves")
    for wave in range(n_waves):
        lanes = data.draw(
            st.lists(
                st.sampled_from(range(n_lanes)),
                unique=True,
                min_size=1,
                max_size=n_lanes,
            ),
            label=f"wave{wave}",
        )
        samples = data.draw(
            st.lists(_sample, min_size=len(lanes), max_size=len(lanes)),
            label=f"samples{wave}",
        )
        cs = np.array(lanes, dtype=np.int64)
        js = np.array([s[0] for s in samples], dtype=np.int64)
        xs = np.array([s[1] for s in samples])
        ys = np.array([s[2] for s in samples])
        codes = fleet.observe_lanes(cs, js, xs, ys)
        for lane, (j, x, y), code in zip(lanes, samples, codes.tolist()):
            assert ACTION_NAMES[int(code)] == twins[lane].observe(j, x, y)
        # Occasionally crash-and-revive a lane: its scalar twin resets
        # too, and the freed lane must come back (LIFO) as a blank slate.
        if data.draw(st.booleans(), label=f"crash{wave}"):
            victim = data.draw(st.sampled_from(range(n_lanes)), label=f"victim{wave}")
            fleet.retire_lane(victim)
            assert fleet.add_lane() == victim
            twins[victim] = ModelAwareCache(BUDGET)
    for lane in range(n_lanes):
        assert backed[lane].digest_state() == twins[lane].digest_state()


def test_retired_then_readded_lane_is_a_fresh_cache():
    fleet, backed, twins = _fleet_with_twins(3)
    rng = np.random.default_rng(7)
    for _ in range(150):
        cs = np.arange(3, dtype=np.int64)
        js = rng.integers(0, MAX_LINES, size=3)
        xs = rng.normal(10.0, 4.0, size=3)
        ys = 1.5 * xs + rng.normal(0.0, 0.5, size=3)
        codes = fleet.observe_lanes(cs, js, xs, ys)
        for lane in range(3):
            want = twins[lane].observe(int(js[lane]), float(xs[lane]), float(ys[lane]))
            assert ACTION_NAMES[int(codes[lane])] == want
    fleet.retire_lane(1)
    assert int(fleet.total[1]) == 0
    lane = fleet.add_lane()
    assert lane == 1  # freed lanes are reused before the fleet grows

    revived = ModelAwareCache(BUDGET)
    revived.bind_fleet(fleet, lane)
    fresh = ModelAwareCache(BUDGET)
    for _ in range(80):
        j = int(rng.integers(0, MAX_LINES))
        x = float(rng.normal(10.0, 4.0))
        y = 1.5 * x + float(rng.normal(0.0, 0.5))
        assert revived.observe(j, x, y) == fresh.observe(j, x, y)
    assert revived.digest_state() == fresh.digest_state()
    # The crash never touched the surviving lanes.
    for lane in (0, 2):
        assert backed[lane].digest_state() == twins[lane].digest_state()


def test_add_lane_grows_the_fleet():
    fleet, backed, twins = _fleet_with_twins(2)
    assert fleet.add_lane() == 2
    assert fleet.F == 3
    grown = ModelAwareCache(BUDGET)
    grown.bind_fleet(fleet, 2)
    fresh = ModelAwareCache(BUDGET)
    rng = np.random.default_rng(3)
    for _ in range(60):
        j = int(rng.integers(0, MAX_LINES))
        x = float(rng.normal(0.0, 3.0))
        y = 0.8 * x + float(rng.normal(0.0, 0.3))
        assert grown.observe(j, x, y) == fresh.observe(j, x, y)
    assert grown.digest_state() == fresh.digest_state()
