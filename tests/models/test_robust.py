"""Tests for the robust regression alternatives."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.metrics import AbsoluteError, RelativeError, SumSquaredError
from repro.models.regression import fit_line, sse_of_model
from repro.models.robust import fit_for_metric, fit_line_lad, theil_sen

coordinate = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False)
pair_lists = st.lists(st.tuples(coordinate, coordinate), min_size=3, max_size=25)


class TestTheilSen:
    def test_exact_line_recovered(self):
        pairs = [(x, 2.0 * x - 1.0) for x in range(6)]
        model = theil_sen(pairs)
        assert model.slope == pytest.approx(2.0)
        assert model.intercept == pytest.approx(-1.0)

    def test_single_outlier_ignored(self):
        """The defining property: one corrupted reading does not move
        the fit, unlike least squares."""
        pairs = [(float(x), 3.0 * x) for x in range(9)]
        pairs[8] = (8.0, 1e6)  # a garbage sensor reading at the extreme
        robust = theil_sen(pairs)
        lsq = fit_line(pairs)
        assert robust.slope == pytest.approx(3.0, abs=0.01)
        assert abs(lsq.slope - 3.0) > 100  # least squares is wrecked

    def test_constant_x_falls_back_to_median(self):
        model = theil_sen([(1.0, 2.0), (1.0, 4.0), (1.0, 100.0)])
        assert model.slope == 0.0
        assert model.intercept == 4.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            theil_sen([])

    @given(pair_lists)
    @settings(max_examples=40, deadline=None)
    def test_finite_on_arbitrary_input(self, pairs):
        model = theil_sen(pairs)
        assert np.isfinite(model.slope)
        assert np.isfinite(model.intercept)


class TestLeastAbsoluteDeviations:
    def test_exact_line_recovered(self):
        pairs = [(x, 0.5 * x + 2.0) for x in range(5)]
        model = fit_line_lad(pairs)
        assert model.slope == pytest.approx(0.5, abs=1e-6)
        assert model.intercept == pytest.approx(2.0, abs=1e-6)

    def test_less_outlier_sensitive_than_lsq(self):
        pairs = [(float(x), x) for x in range(11)]
        pairs[5] = (5.0, 500.0)
        lad = fit_line_lad(pairs)
        lsq = fit_line(pairs)
        truth_errors_lad = sum(abs(y - lad.predict(x)) for x, y in pairs[:5])
        truth_errors_lsq = sum(abs(y - lsq.predict(x)) for x, y in pairs[:5])
        assert truth_errors_lad < truth_errors_lsq

    def test_lad_objective_not_worse_than_lsq_start(self):
        rng = np.random.default_rng(0)
        pairs = [(float(x), 2 * x + float(rng.normal(0, 1))) for x in range(20)]
        lad = fit_line_lad(pairs)
        lsq = fit_line(pairs)
        lad_cost = sum(abs(y - lad.predict(x)) for x, y in pairs)
        lsq_cost = sum(abs(y - lsq.predict(x)) for x, y in pairs)
        assert lad_cost <= lsq_cost + 1e-6

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            fit_line_lad([])
        with pytest.raises(ValueError):
            fit_line_lad([(0.0, 0.0)], iterations=0)


class TestFitForMetric:
    def test_dispatch(self):
        pairs = [(float(x), 2.0 * x) for x in range(5)]
        sse_fit = fit_for_metric(pairs, SumSquaredError())
        assert sse_fit == fit_line(pairs)
        lad_fit = fit_for_metric(pairs, AbsoluteError())
        assert lad_fit.slope == pytest.approx(2.0, abs=1e-6)
        ts_fit = fit_for_metric(pairs, RelativeError())
        assert ts_fit.slope == pytest.approx(2.0)

    @given(pair_lists)
    @settings(max_examples=30, deadline=None)
    def test_sse_dispatch_is_lsq_optimal(self, pairs):
        model = fit_for_metric(pairs, SumSquaredError())
        lsq = fit_line(pairs)
        assert sse_of_model(pairs, model) == pytest.approx(
            sse_of_model(pairs, lsq)
        )
