"""Tests for cache lines and budget accounting (§4)."""

from __future__ import annotations

import pytest

from repro.models.cache import BYTES_PER_PAIR, CacheLine, pairs_for_budget


class TestBudget:
    def test_paper_default(self):
        # 2,048 bytes at 8 bytes per pair -> 256 pairs (§6.1).
        assert pairs_for_budget(2048) == 256

    def test_rounds_down(self):
        assert pairs_for_budget(BYTES_PER_PAIR * 3 + 7) == 3

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            pairs_for_budget(BYTES_PER_PAIR - 1)


class TestCacheLine:
    def test_append_and_order(self):
        line = CacheLine(neighbor_id=4)
        line.append(1.0, 2.0)
        line.append(3.0, 4.0)
        assert line.pairs == [(1.0, 2.0), (3.0, 4.0)]
        assert len(line) == 2

    def test_evict_oldest(self):
        line = CacheLine(neighbor_id=4)
        line.append(1.0, 2.0)
        line.append(3.0, 4.0)
        assert line.evict_oldest() == (1.0, 2.0)
        assert line.pairs == [(3.0, 4.0)]

    def test_evict_empty_raises(self):
        with pytest.raises(IndexError):
            CacheLine(neighbor_id=0).evict_oldest()

    def test_model_cached_and_invalidated(self):
        line = CacheLine(neighbor_id=1)
        line.append(0.0, 0.0)
        line.append(1.0, 2.0)
        first = line.model()
        assert line.model() is first  # cached
        line.append(2.0, 4.0)
        second = line.model()
        assert second is not first
        assert second.slope == pytest.approx(2.0)

    def test_benefit_positive_for_predictable_data(self):
        line = CacheLine(neighbor_id=1)
        for x in range(5):
            line.append(float(x), 10.0 + float(x))
        assert line.benefit() > 0.0

    def test_benefit_empty_is_zero(self):
        assert CacheLine(neighbor_id=0).benefit() == 0.0

    def test_eviction_penalty_single_pair_is_full_benefit(self):
        line = CacheLine(neighbor_id=1)
        line.append(1.0, 5.0)
        assert line.eviction_penalty() == pytest.approx(line.benefit())

    def test_eviction_penalty_zero_for_perfectly_linear_data(self):
        """Dropping one pair from an exact line loses nothing."""
        line = CacheLine(neighbor_id=1)
        for x in range(4):
            line.append(float(x), 2.0 * x + 1.0)
        assert line.eviction_penalty() == pytest.approx(0.0, abs=1e-9)

    def test_eviction_penalty_positive_when_oldest_matters(self):
        """The only pair anchoring the slope is expensive to lose."""
        line = CacheLine(neighbor_id=1)
        line.append(0.0, 0.0)       # anchors the slope
        line.append(10.0, 20.0)
        line.append(10.0, 20.0)
        assert line.eviction_penalty() > 0.0

    def test_iteration(self):
        line = CacheLine(neighbor_id=9)
        line.append(1.0, 1.0)
        assert list(line) == [(1.0, 1.0)]
