"""Tests for the model-aware cache manager's §4 decision procedure."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.cache import BYTES_PER_PAIR
from repro.models.cache_manager import ModelAwareCache
from repro.models.policy import Action


def cache_of(pairs: int) -> ModelAwareCache:
    return ModelAwareCache(BYTES_PER_PAIR * pairs)


class TestAdmissionWhileNotFull:
    def test_appends_until_full(self):
        cache = cache_of(3)
        assert cache.observe(1, 0.0, 1.0) == Action.APPEND
        assert cache.observe(2, 0.0, 2.0) == Action.APPEND
        assert cache.observe(1, 1.0, 2.0) == Action.APPEND
        assert cache.is_full
        assert cache.total_pairs == 3

    def test_model_available_after_first_pair(self):
        cache = cache_of(4)
        cache.observe(7, 2.0, 10.0)
        assert cache.estimate(7, 123.0) == pytest.approx(10.0)  # constant model


class TestFullCacheDecisions:
    def test_reject_when_current_model_is_exact(self):
        """New pair on the same exact line: the existing model already
        predicts it perfectly, so the cache keeps its state."""
        cache = cache_of(2)
        cache.observe(1, 0.0, 1.0)
        cache.observe(1, 1.0, 3.0)  # line y = 2x + 1
        assert cache.observe(1, 2.0, 5.0) == Action.REJECT
        assert cache.line(1).pairs == [(0.0, 1.0), (1.0, 3.0)]

    def test_shift_via_fallback_when_no_victim_exists(self):
        """With a single line there is nothing to steal from; the
        fallback time-shifts when the shifted model explains all known
        observations (c_aug) strictly better than the current one.

        Note the paper's benefit algebra: every candidate is evaluated
        on c_aug, where the LSQ fit of c_aug is optimal by definition —
        so tests 1 and 2 only fire at exact ties (e.g. collinear data)
        and SHIFT ordinarily happens through this fallback.
        """
        cache = cache_of(2)
        cache.observe(1, 0.0, 0.0)
        cache.observe(1, 1.0, 10.0)
        # current model y=10x errs by 19 at the new point; the shifted
        # model errs by only ~9.5 at the dropped one.
        action = cache.observe(1, 3.0, 11.0)
        assert action == Action.SHIFT
        assert cache.line(1).pairs == [(1.0, 10.0), (3.0, 11.0)]

    def test_augment_steals_from_noisy_line(self):
        """A line whose model is worthless (penalty ~ 0 benefit) donates
        its oldest pair to a line that gains from growing."""
        cache = cache_of(4)
        # Neighbor 2: noise around zero -- near-zero benefit over no-answer.
        cache.observe(2, 0.0, 0.001)
        cache.observe(2, 1.0, -0.001)
        # Neighbor 1: two points of a steep, imperfectly known line.
        cache.observe(1, 0.0, 5.0)
        cache.observe(1, 1.0, 17.0)
        # list(...) snapshots: .pairs is a live view of the line.
        before = list(cache.line(2).pairs)
        action = cache.observe(1, 2.0, 28.0)
        assert action in (Action.AUGMENT, Action.SHIFT, Action.REJECT)
        if action == Action.AUGMENT:
            assert len(cache.line(1)) == 3
            assert len(cache.line(2) or []) < len(before) or cache.line(2) is None

    def test_capacity_never_exceeded(self):
        cache = cache_of(3)
        for step in range(30):
            cache.observe(step % 4, float(step), float(step * 2 + 1))
            assert cache.total_pairs <= 3


class TestNewcomerRule:
    def test_newcomer_admitted_round_robin(self):
        cache = cache_of(2)
        cache.observe(1, 0.0, 1.0)
        cache.observe(2, 0.0, 2.0)
        action = cache.observe(3, 0.0, 1000.0)  # huge value, no history
        assert action == Action.NEWCOMER
        assert cache.line(3) is not None
        assert cache.total_pairs == 2

    def test_round_robin_cycles_victims(self):
        cache = cache_of(3)
        cache.observe(1, 0.0, 1.0)
        cache.observe(2, 0.0, 2.0)
        cache.observe(3, 0.0, 3.0)
        cache.observe(4, 0.0, 4.0)  # evicts from line 1
        cache.observe(5, 0.0, 5.0)  # evicts from line 2
        survivors = cache.known_neighbors()
        assert 4 in survivors and 5 in survivors
        assert len(survivors) == 3

    def test_newcomer_rejected_when_no_other_line(self):
        cache = cache_of(1)
        cache.observe(1, 0.0, 1.0)
        # the only line belongs to neighbor 1; a newcomer for neighbor 2
        # could only evict... neighbor 1's single pair, which is allowed
        victim_action = cache.observe(2, 0.0, 2.0)
        assert victim_action == Action.NEWCOMER
        assert cache.known_neighbors() == [2]

    def test_huge_newcomer_does_not_trigger_benefit_eviction(self):
        """The x_j^2 gain of a newcomer must not out-bid good models;
        the round-robin rule caps the damage at one pair."""
        cache = cache_of(4)
        for x in range(4):
            cache.observe(1, float(x), 0.01 * x)  # good small-amplitude model
        cache.observe(9, 0.0, 1e6)
        assert len(cache.line(1)) == 3  # exactly one pair sacrificed
        assert len(cache.line(9)) == 1


class TestInvariantsPropertyBased:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=6),
                st.floats(min_value=-100, max_value=100, allow_nan=False),
                st.floats(min_value=-100, max_value=100, allow_nan=False),
            ),
            max_size=80,
        ),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_capacity_and_action_invariants(self, observations, capacity):
        cache = cache_of(capacity)
        total_before = 0
        for neighbor, x, y in observations:
            action = cache.observe(neighbor, x, y)
            assert action in Action.ALL
            assert cache.total_pairs <= capacity
            if action == Action.REJECT:
                assert cache.total_pairs == total_before
            elif action == Action.APPEND:
                assert cache.total_pairs == total_before + 1
            else:  # shift / augment / newcomer keep the cache full
                assert cache.total_pairs == capacity
            total_before = cache.total_pairs
        # every line reported by known_neighbors is non-empty
        for neighbor in cache.known_neighbors():
            assert len(cache.line(neighbor)) > 0

    @given(
        st.lists(
            st.floats(min_value=-50, max_value=50, allow_nan=False),
            min_size=3,
            max_size=30,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_single_line_models_stay_fittable(self, ys):
        """A stream for one neighbor always leaves a usable model."""
        cache = cache_of(4)
        for index, y in enumerate(ys):
            cache.observe(1, float(index), y)
        assert cache.model(1) is not None
        assert cache.estimate(1, 0.0) is not None
