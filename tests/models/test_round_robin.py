"""Tests for the round-robin / FIFO baseline cache."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.cache import BYTES_PER_PAIR
from repro.models.policy import Action
from repro.models.round_robin import RoundRobinCache


def cache_of(pairs: int) -> RoundRobinCache:
    return RoundRobinCache(BYTES_PER_PAIR * pairs)


class TestFifoSemantics:
    def test_admits_everything(self):
        cache = cache_of(2)
        assert cache.observe(1, 0.0, 1.0) == Action.APPEND
        assert cache.observe(2, 0.0, 2.0) == Action.APPEND
        assert cache.observe(3, 0.0, 3.0) == Action.SHIFT  # evicted oldest

    def test_evicts_globally_oldest(self):
        cache = cache_of(3)
        cache.observe(1, 0.0, 1.0)   # oldest
        cache.observe(2, 0.0, 2.0)
        cache.observe(1, 1.0, 3.0)
        cache.observe(3, 0.0, 4.0)   # evicts neighbor 1's first pair
        assert cache.line(1).pairs == [(1.0, 3.0)]
        assert cache.total_pairs == 3

    def test_line_removed_when_emptied(self):
        cache = cache_of(1)
        cache.observe(1, 0.0, 1.0)
        cache.observe(2, 0.0, 2.0)
        assert cache.line(1) is None
        assert cache.known_neighbors() == [2]

    def test_forget_purges_order_queue(self):
        cache = cache_of(2)
        cache.observe(1, 0.0, 1.0)
        cache.observe(2, 0.0, 2.0)
        cache.forget(1)
        # the forgotten line's order entry must not be evicted "again"
        cache.observe(3, 0.0, 3.0)
        cache.observe(4, 0.0, 4.0)
        assert cache.total_pairs == 2
        assert set(cache.known_neighbors()) <= {2, 3, 4}

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.floats(min_value=-10, max_value=10, allow_nan=False),
            ),
            max_size=60,
        ),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=50, deadline=None)
    def test_capacity_respected_and_newest_survives(self, stream, capacity):
        cache = cache_of(capacity)
        for neighbor, value in stream:
            cache.observe(neighbor, 0.5, value)
            assert cache.total_pairs <= capacity
        if stream:
            last_neighbor, last_value = stream[-1]
            line = cache.line(last_neighbor)
            assert line is not None
            assert line.pairs[-1] == (0.5, last_value)
