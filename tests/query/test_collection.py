"""Tests for message-driven TAG collection (`messaged=True` execution)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ProtocolConfig
from repro.core.runtime import SnapshotRuntime
from repro.data.series import Dataset
from repro.network.links import GlobalLoss, PerLinkLoss
from repro.network.topology import Topology
from repro.query.ast import Aggregate, Query
from repro.query.executor import QueryExecutor
from repro.query.spatial import Everywhere


def line_runtime(n: int = 6, loss_model=None, reach: float = 0.2):
    """A multi-hop line of nodes with simple ramp data."""
    base = np.linspace(0.0, 40.0, 400)
    values = np.stack([base + 1.0 * i for i in range(n)])
    dataset = Dataset(values)
    topology = Topology([(0.15 * i, 0.5) for i in range(n)], ranges=reach)
    kwargs = {"loss_model": loss_model} if loss_model is not None else {}
    runtime = SnapshotRuntime(
        topology, dataset, ProtocolConfig(threshold=3.0), seed=5, **kwargs
    )
    runtime.train(duration=10)
    return runtime


class TestLosslessEquivalence:
    def test_drill_through_matches_central(self):
        runtime = line_runtime()
        executor = QueryExecutor(runtime)
        query = Query(region=Everywhere())
        central = executor.execute(query, sink=0, charge_energy=False)
        messaged = executor.execute(query, sink=0, messaged=True)
        assert messaged.reports == central.reports
        assert messaged.coverage() == central.coverage()

    @pytest.mark.parametrize(
        "aggregate", [Aggregate.SUM, Aggregate.AVG, Aggregate.MIN,
                      Aggregate.MAX, Aggregate.COUNT]
    )
    def test_aggregates_match_central(self, aggregate):
        runtime = line_runtime()
        executor = QueryExecutor(runtime)
        query = Query(region=Everywhere(), aggregate=aggregate)
        central = executor.execute(query, sink=0, charge_energy=False)
        messaged = executor.execute(query, sink=0, messaged=True)
        assert messaged.aggregate_value == pytest.approx(central.aggregate_value)

    def test_snapshot_mode_matches_central(self):
        runtime = line_runtime(reach=2.0)
        runtime.run_election()
        executor = QueryExecutor(runtime)
        query = Query(region=Everywhere(), use_snapshot=True)
        central = executor.execute(query, sink=0, charge_energy=False)
        messaged = executor.execute(query, sink=0, messaged=True)
        assert set(messaged.reports) == set(central.reports)
        for origin, (value, estimated) in messaged.reports.items():
            assert central.reports[origin][0] == pytest.approx(value)
            assert central.reports[origin][1] == estimated


class TestLossyDegradation:
    def test_blocked_link_silences_the_subtree(self):
        """Losing the partial near the root drops the whole branch —
        TAG's characteristic failure mode."""
        loss = PerLinkLoss(base=0.0)
        loss.block_link(1, 0)  # node 1 can never reach the sink
        runtime = line_runtime(loss_model=None)
        # swap in the lossy model *after* training and tree formation
        # would also drop the flood; block only now
        runtime.radio.loss_model = loss
        executor = QueryExecutor(runtime)
        query = Query(region=Everywhere())
        result = executor.execute(query, sink=0, messaged=True)
        # nodes 1..5 all route through the blocked link
        assert set(result.reports) == {0}
        assert result.coverage() < 1.0

    def test_heavy_loss_loses_data_but_not_correctness(self):
        runtime = line_runtime(reach=2.0)
        runtime.radio.loss_model = GlobalLoss(0.5)
        executor = QueryExecutor(runtime)
        query = Query(region=Everywhere(), aggregate=Aggregate.COUNT)
        result = executor.execute(query, sink=0, messaged=True)
        assert result.aggregate_value is not None
        assert 1.0 <= result.aggregate_value <= 6.0

    def test_messaged_charges_energy(self):
        runtime = line_runtime()
        executor = QueryExecutor(runtime)
        before = runtime.ledger.total("transmit")
        executor.execute(Query(region=Everywhere()), sink=0, messaged=True)
        assert runtime.ledger.total("transmit") > before
