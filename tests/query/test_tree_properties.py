"""Property-based tests of aggregation-tree invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.links import GlobalLoss
from repro.network.topology import Topology
from repro.query.aggregation_tree import AggregationTree


@st.composite
def topologies(draw):
    n = draw(st.integers(min_value=2, max_value=25))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    positions = [(float(x), float(y)) for x, y in rng.random((n, 2))]
    reach = draw(st.floats(min_value=0.2, max_value=1.5))
    return Topology(positions, reach)


@given(
    topologies(),
    st.integers(min_value=0, max_value=10_000),
    st.floats(min_value=0.0, max_value=0.9),
)
@settings(max_examples=60, deadline=None)
def test_tree_structural_invariants(topology, seed, loss):
    rng = np.random.default_rng(seed)
    sink = int(rng.integers(0, len(topology)))
    alive = set(topology.node_ids)
    tree = AggregationTree.build(
        topology, sink, alive, rng, loss_model=GlobalLoss(loss)
    )

    # the sink is always a member and its own parent at depth 0
    assert tree.parent(sink) == sink
    assert tree.depths[sink] == 0

    for member in tree.members:
        parent = tree.parents[member]
        # parents are members; depth decreases by exactly one per hop
        assert parent in tree.members
        if member != sink:
            assert tree.depths[member] == tree.depths[parent] + 1
            # radio feasibility: the parent can actually transmit to us
            assert topology.can_transmit(parent, member)
        # paths terminate at the sink and have depth+1 nodes
        path = tree.path_to_sink(member)
        assert path[0] == member
        assert path[-1] == sink
        assert len(path) == tree.depths[member] + 1


@given(topologies(), st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_lossless_tree_spans_reachable_nodes(topology, seed):
    """Without loss, the tree contains exactly the nodes reachable from
    the sink over directed radio links."""
    rng = np.random.default_rng(seed)
    sink = int(rng.integers(0, len(topology)))
    tree = AggregationTree.build(topology, sink, set(topology.node_ids), rng)

    reachable = {sink}
    frontier = [sink]
    while frontier:
        current = frontier.pop()
        for neighbor in topology.out_neighbors(current):
            if neighbor not in reachable:
                reachable.add(neighbor)
                frontier.append(neighbor)
    assert tree.members == frozenset(reachable)


@given(topologies(), st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_routers_disjoint_from_responders(topology, seed):
    rng = np.random.default_rng(seed)
    sink = int(rng.integers(0, len(topology)))
    tree = AggregationTree.build(topology, sink, set(topology.node_ids), rng)
    members = sorted(tree.members)
    responders = set(members[:: max(1, len(members) // 3)])
    routers = tree.routers_for(responders)
    assert not (routers & responders)
    assert sink not in routers
    # every router lies on some responder's path
    on_paths = set()
    for responder in responders:
        if responder in tree.members:
            on_paths.update(tree.path_to_sink(responder)[1:-1])
    assert routers <= on_paths
