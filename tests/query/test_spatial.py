"""Tests for spatial predicates."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.spatial import (
    Circle,
    Everywhere,
    NAMED_REGIONS,
    Rect,
    named_region,
    random_square,
)

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestRect:
    def test_contains_inclusive_boundaries(self):
        rect = Rect(0.0, 0.0, 1.0, 1.0)
        assert rect.contains(0.0, 0.0)
        assert rect.contains(1.0, 1.0)
        assert not rect.contains(1.0001, 0.5)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Rect(1.0, 0.0, 0.0, 1.0)

    def test_area(self):
        assert Rect(0.0, 0.0, 0.5, 0.2).area == pytest.approx(0.1)

    def test_point_overload(self):
        assert Rect(0.0, 0.0, 1.0, 1.0).contains_point((0.5, 0.5))


class TestCircle:
    def test_contains(self):
        circle = Circle(0.5, 0.5, 0.25)
        assert circle.contains(0.5, 0.74)
        assert not circle.contains(0.5, 0.76)

    def test_boundary_inclusive(self):
        assert Circle(0.0, 0.0, 1.0).contains(1.0, 0.0)

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Circle(0.0, 0.0, -1.0)


class TestEverywhere:
    @given(unit, unit)
    def test_matches_everything(self, x, y):
        assert Everywhere().contains(x, y)


class TestNamedRegions:
    def test_quadrants_partition_unit_square(self):
        quadrants = [
            named_region(name)
            for name in (
                "NORTH_WEST_QUADRANT",
                "NORTH_EAST_QUADRANT",
                "SOUTH_WEST_QUADRANT",
                "SOUTH_EAST_QUADRANT",
            )
        ]
        point = (0.3, 0.8)
        assert sum(q.contains(*point) for q in quadrants) == 1

    def test_case_insensitive(self):
        assert named_region("south_east_quadrant") == NAMED_REGIONS[
            "SOUTH_EAST_QUADRANT"
        ]

    def test_paper_typo_alias(self):
        """The paper's example query spells it SHOUTH_EAST_QUANDRANT."""
        assert named_region("SHOUTH_EAST_QUANDRANT") == named_region(
            "SOUTH_EAST_QUADRANT"
        )

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            named_region("ATLANTIS")


class TestRandomSquare:
    def test_area_matches(self):
        rng = np.random.default_rng(0)
        square = random_square(0.25, rng)
        assert square.area == pytest.approx(0.25)

    def test_center_in_unit_square(self):
        rng = np.random.default_rng(1)
        for _ in range(50):
            square = random_square(0.01, rng)
            cx = (square.x_low + square.x_high) / 2
            cy = (square.y_low + square.y_high) / 2
            assert 0.0 <= cx < 1.0 and 0.0 <= cy < 1.0

    def test_invalid_area(self):
        with pytest.raises(ValueError):
            random_square(0.0, np.random.default_rng(0))

    @given(st.floats(min_value=0.001, max_value=0.9), st.integers(0, 100))
    @settings(max_examples=25)
    def test_side_is_sqrt_area(self, area, seed):
        square = random_square(area, np.random.default_rng(seed))
        side = square.x_high - square.x_low
        assert side == pytest.approx(np.sqrt(area))
