"""Query execution when a representative is dead.

A snapshot query routed through a cluster whose representative has
failed must *degrade* — lower coverage, the dead node and its orphaned
members absent from the reports — never crash the executor, and never
paper over the hole by reporting the dead representative's stale model
estimates as if they were live coverage.  (§6: the snapshot is a lossy
summary; a failed representative's members are unreachable through it
until §5.1 maintenance re-homes them.)
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ProtocolConfig
from repro.core.runtime import SnapshotRuntime
from repro.core.status import NodeMode
from repro.data.series import Dataset
from repro.faults.injector import FaultInjector
from repro.network.topology import Topology
from repro.query.ast import Query
from repro.query.continuous import ContinuousQuery
from repro.query.executor import QueryExecutor
from repro.query.parser import parse_query
from repro.query.spatial import Everywhere


def snapshot_runtime(n: int = 6, seed: int = 6) -> SnapshotRuntime:
    base = np.linspace(0.0, 40.0, 600)
    values = np.stack([base + 0.5 * i for i in range(n)])
    topology = Topology([(0.15 * i, 0.5) for i in range(n)], ranges=2.0)
    runtime = SnapshotRuntime(
        topology,
        Dataset(values),
        ProtocolConfig(threshold=5.0, heartbeat_period=20.0),
        seed=seed,
        battery_capacity=100.0,
    )
    runtime.train(duration=10)
    runtime.run_election()
    return runtime


def representative_with_members(runtime: SnapshotRuntime) -> tuple[int, tuple[int, ...]]:
    view = runtime.snapshot()
    rep, members = max(view.claims.items(), key=lambda item: len(item[1]))
    assert members, "fixture must elect a representative with members"
    return rep, members


class TestSnapshotQueryWithDeadRepresentative:
    def test_degrades_instead_of_crashing(self):
        runtime = snapshot_runtime()
        rep, members = representative_with_members(runtime)
        FaultInjector(runtime).crash(rep)
        executor = QueryExecutor(runtime)
        result = executor.execute(
            Query(region=Everywhere(), use_snapshot=True), charge_energy=False
        )
        assert result.coverage() < 1.0
        assert rep in result.matching_all
        assert rep not in result.matching_alive

    def test_dead_representative_never_reports(self):
        """The dead node must not appear as an origin — neither with its
        own reading nor via some cached estimate of it."""
        runtime = snapshot_runtime()
        rep, members = representative_with_members(runtime)
        FaultInjector(runtime).crash(rep)
        executor = QueryExecutor(runtime)
        result = executor.execute(
            Query(region=Everywhere(), use_snapshot=True), charge_energy=False
        )
        assert rep not in result.reports
        assert rep not in result.responders

    def test_orphaned_members_not_claimed_as_covered(self):
        """Members whose only path into the snapshot was the dead
        representative's model must be missing, not silently filled in:
        stale estimates counted as full coverage would make Figure 10's
        metric lie under failure."""
        runtime = snapshot_runtime()
        rep, members = representative_with_members(runtime)
        FaultInjector(runtime).crash(rep)
        executor = QueryExecutor(runtime)
        result = executor.execute(
            Query(region=Everywhere(), use_snapshot=True), charge_energy=False
        )
        orphans = [m for m in members if runtime.nodes[m].mode is NodeMode.PASSIVE]
        for member in orphans:
            assert member not in result.reports
        # Coverage reflects exactly the dead cluster's hole.
        expected = 1.0 - (1 + len(orphans)) / len(result.matching_all)
        assert result.coverage() == pytest.approx(expected)

    def test_maintenance_restores_coverage_after_death(self):
        runtime = snapshot_runtime()
        rep, _ = representative_with_members(runtime)
        FaultInjector(runtime).crash(rep)
        runtime.start_maintenance()
        runtime.advance_to(runtime.now + 45.0)  # two heartbeat periods
        runtime.maintenance.stop()
        result = QueryExecutor(runtime).execute(
            Query(region=Everywhere(), use_snapshot=True), charge_energy=False
        )
        # The orphans re-homed; only the dead node itself is missing.
        assert result.coverage() == pytest.approx(
            1.0 - 1 / len(result.matching_all)
        )


class TestContinuousQueryWithDeadSink:
    def test_all_epochs_complete_when_pinned_sink_dies(self):
        """A continuous query pinned to a sink that dies mid-run must
        finish every epoch (falling back to per-epoch alive sinks), not
        crash out of the executor's sink validation."""
        runtime = snapshot_runtime()
        rep, _ = representative_with_members(runtime)
        executor = QueryExecutor(runtime)
        query = parse_query(
            "SELECT loc FROM sensors SAMPLE INTERVAL 5s FOR 20s"
        )
        handle = ContinuousQuery(executor, query, sink=rep).start()
        runtime.advance_to(runtime.now + 7.0)  # epoch 1 done
        FaultInjector(runtime).crash(rep)
        runtime.advance_to(runtime.now + 25.0)
        assert handle.finished
        assert len(handle.records) == handle.total_epochs
        # Epochs after the death still produced results.
        assert all(record.result is not None for record in handle.records)

    def test_epochs_after_sink_death_exclude_dead_node(self):
        runtime = snapshot_runtime()
        rep, _ = representative_with_members(runtime)
        executor = QueryExecutor(runtime)
        query = parse_query(
            "SELECT loc FROM sensors SAMPLE INTERVAL 5s FOR 20s"
        )
        handle = ContinuousQuery(executor, query, sink=rep).start()
        runtime.advance_to(runtime.now + 7.0)
        FaultInjector(runtime).crash(rep)
        runtime.advance_to(runtime.now + 25.0)
        for record in handle.records[1:]:
            assert rep not in record.result.responders
