"""Tests for continuous queries sampled over simulated time."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ProtocolConfig
from repro.core.runtime import SnapshotRuntime
from repro.data.series import Dataset
from repro.network.topology import Topology
from repro.query.continuous import ContinuousQuery
from repro.query.executor import QueryExecutor
from repro.query.parser import parse_query


def runtime_with_snapshot(n: int = 6, battery: float | None = None):
    base = np.linspace(0.0, 40.0, 600)
    values = np.stack([base + 0.5 * i for i in range(n)])
    dataset = Dataset(values)
    topology = Topology([(0.15 * i, 0.5) for i in range(n)], ranges=2.0)
    runtime = SnapshotRuntime(
        topology, dataset,
        ProtocolConfig(threshold=5.0, heartbeat_period=20.0),
        seed=6, battery_capacity=battery,
    )
    runtime.train(duration=10)
    runtime.run_election()
    return runtime


class TestLifecycle:
    def test_epochs_spread_over_time(self):
        runtime = runtime_with_snapshot()
        executor = QueryExecutor(runtime)
        query = parse_query(
            "SELECT loc, value FROM sensors SAMPLE INTERVAL 5s FOR 20s USE SNAPSHOT"
        )
        handle = ContinuousQuery(executor, query, sink=0).start()
        start = runtime.now
        runtime.advance_to(start + 30)
        assert handle.finished
        assert len(handle.records) == 4
        times = [record.time for record in handle.records]
        assert times == [start + 5, start + 10, start + 15, start + 20]

    def test_requires_acquisition_clauses(self):
        runtime = runtime_with_snapshot()
        executor = QueryExecutor(runtime)
        with pytest.raises(ValueError):
            ContinuousQuery(executor, parse_query("SELECT loc FROM sensors"))

    def test_double_start_rejected(self):
        runtime = runtime_with_snapshot()
        executor = QueryExecutor(runtime)
        query = parse_query("SELECT loc FROM sensors SAMPLE INTERVAL 5s FOR 10s")
        handle = ContinuousQuery(executor, query).start()
        with pytest.raises(RuntimeError):
            handle.start()

    def test_stop_cancels_remaining_epochs(self):
        runtime = runtime_with_snapshot()
        executor = QueryExecutor(runtime)
        query = parse_query("SELECT loc FROM sensors SAMPLE INTERVAL 5s FOR 100s")
        handle = ContinuousQuery(executor, query, sink=0).start()
        runtime.advance_to(runtime.now + 12)
        handle.stop()
        runtime.advance_to(runtime.now + 50)
        assert len(handle.records) == 2
        assert handle.finished


class TestSemantics:
    def test_aggregate_series_tracks_moving_data(self):
        runtime = runtime_with_snapshot()
        executor = QueryExecutor(runtime)
        query = parse_query(
            "SELECT AVG(value) FROM sensors SAMPLE INTERVAL 10s FOR 40s"
        )
        handle = ContinuousQuery(executor, query, sink=0).start()
        runtime.advance_to(runtime.now + 50)
        series = handle.aggregate_series()
        assert len(series) == 4
        # the underlying ramps increase, so should the epoch averages
        assert all(a < b for a, b in zip(series, series[1:]))

    def test_callback_invoked_per_epoch(self):
        runtime = runtime_with_snapshot()
        executor = QueryExecutor(runtime)
        seen = []
        query = parse_query("SELECT loc FROM sensors SAMPLE INTERVAL 5s FOR 15s")
        ContinuousQuery(
            executor, query, sink=0, on_epoch=lambda record: seen.append(record.epoch)
        ).start()
        runtime.advance_to(runtime.now + 20)
        assert seen == [1, 2, 3]

    def test_mid_query_rep_death_heals_between_epochs(self):
        runtime = runtime_with_snapshot(battery=400.0)
        runtime.start_maintenance()
        executor = QueryExecutor(runtime)
        query = parse_query(
            "SELECT loc, value FROM sensors SAMPLE INTERVAL 25s FOR 150s USE SNAPSHOT"
        )
        handle = ContinuousQuery(executor, query, sink=0).start()
        runtime.advance_to(runtime.now + 30)
        # kill the current representative set (except the sink)
        view = runtime.snapshot()
        for rep in view.representatives:
            if rep != 0:
                runtime.radio.node(rep).battery.draw(1e9)
        runtime.advance_to(runtime.now + 140)
        assert handle.finished
        # later epochs recovered useful coverage after re-election
        final_coverage = handle.records[-1].coverage
        assert final_coverage >= 0.5

    def test_mean_statistics(self):
        runtime = runtime_with_snapshot()
        executor = QueryExecutor(runtime)
        query = parse_query(
            "SELECT loc, value FROM sensors SAMPLE INTERVAL 5s FOR 15s USE SNAPSHOT"
        )
        handle = ContinuousQuery(executor, query, sink=0).start()
        runtime.advance_to(runtime.now + 20)
        assert 0.0 < handle.mean_participants() <= 6.0
        assert handle.mean_coverage() == pytest.approx(1.0)


class TestDegradedNetworks:
    def test_pinned_sink_death_degrades_to_random_sink(self):
        """A dead pinned collection point downgrades to per-epoch random
        sinks instead of crashing the query out of sink validation."""
        runtime = runtime_with_snapshot(battery=500.0)
        executor = QueryExecutor(runtime)
        query = parse_query(
            "SELECT loc, value FROM sensors SAMPLE INTERVAL 5s FOR 25s USE SNAPSHOT"
        )
        handle = ContinuousQuery(executor, query, sink=3).start()
        runtime.advance_to(runtime.now + 7)  # one epoch with the pinned sink
        runtime.radio.node(3).battery.draw(1e9)  # kill the sink mid-query
        runtime.advance_to(runtime.now + 23)
        assert handle.finished
        assert len(handle.records) == 5
        # epochs after the death were still answered (substitute sinks)
        assert handle.records[-1].coverage > 0.0

    def test_whole_network_death_stops_query(self):
        runtime = runtime_with_snapshot(battery=200.0)
        executor = QueryExecutor(runtime)
        query = parse_query(
            "SELECT loc FROM sensors SAMPLE INTERVAL 5s FOR 500s USE SNAPSHOT"
        )
        handle = ContinuousQuery(executor, query).start()
        for node in runtime.radio.nodes.values():
            node.battery.draw(1e9)
        runtime.advance_to(runtime.now + 20)
        assert handle.finished
        assert handle.records == []

    def test_statistics_before_first_epoch(self):
        runtime = runtime_with_snapshot()
        executor = QueryExecutor(runtime)
        query = parse_query("SELECT loc FROM sensors SAMPLE INTERVAL 5s FOR 10s")
        handle = ContinuousQuery(executor, query)
        assert not handle.finished
        assert handle.total_epochs == 2
        assert handle.results == []
        assert handle.aggregate_series() == []
        assert handle.mean_coverage() == 0.0
        assert handle.mean_participants() == 0.0
        assert handle.runtime is runtime
