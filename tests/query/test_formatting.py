"""Tests for query formatting, including the parse/format round trip."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.ast import Aggregate, Comparison, Query, ValuePredicate
from repro.query.formatting import format_query, format_region
from repro.query.parser import parse_query
from repro.query.spatial import Circle, Everywhere, Rect, named_region

# -- strategies ------------------------------------------------------------

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False).map(
    lambda value: round(value, 3)
)


@st.composite
def rects(draw):
    x1, x2 = sorted((draw(unit), draw(unit)))
    y1, y2 = sorted((draw(unit), draw(unit)))
    return Rect(x1, y1, x2, y2)


@st.composite
def circles(draw):
    return Circle(draw(unit), draw(unit), draw(unit))


regions = st.one_of(st.just(Everywhere()), rects(), circles())

identifiers = st.sampled_from(["value", "temperature", "humidity", "loc"])


@st.composite
def queries(draw):
    aggregate = draw(st.sampled_from([None] + list(Aggregate)))
    select = ("loc", "value") if aggregate is None else ()
    predicate = draw(
        st.one_of(
            st.none(),
            st.builds(
                ValuePredicate,
                attribute=st.sampled_from(["temperature", "humidity"]),
                op=st.sampled_from(list(Comparison)),
                constant=st.integers(min_value=-50, max_value=50).map(float),
            ),
        )
    )
    interval = draw(st.sampled_from([None, 1.0, 5.0, 60.0, 3600.0]))
    duration = None if interval is None else interval * draw(
        st.integers(min_value=1, max_value=10)
    )
    use_snapshot = draw(st.booleans())
    threshold = None
    if use_snapshot:
        threshold = draw(st.sampled_from([None, 0.5, 1.0, 10.0]))
    return Query(
        select=select,
        aggregate=aggregate,
        aggregate_attribute="value" if aggregate is None else draw(identifiers),
        region=draw(regions),
        value_predicate=predicate,
        sample_interval=interval,
        duration=duration,
        use_snapshot=use_snapshot,
        snapshot_threshold=threshold,
    )


class TestFormatRegion:
    def test_rect(self):
        assert format_region(Rect(0.0, 0.1, 0.5, 0.9)) == "RECT(0, 0.1, 0.5, 0.9)"

    def test_circle(self):
        assert format_region(Circle(0.5, 0.5, 0.2)) == "CIRCLE(0.5, 0.5, 0.2)"

    def test_named_region_canonicalized(self):
        region = named_region("SHOUTH_EAST_QUANDRANT")
        assert format_region(region) == "SOUTH_EAST_QUADRANT"

    def test_everywhere_has_no_syntax(self):
        with pytest.raises(ValueError):
            format_region(Everywhere())


class TestFormatQuery:
    def test_paper_example(self):
        text = (
            "SELECT loc, temperature FROM sensors "
            "WHERE loc IN SOUTH_EAST_QUADRANT "
            "SAMPLE INTERVAL 1s FOR 5 min USE SNAPSHOT"
        )
        assert format_query(parse_query(text)) == text

    def test_with_error_clause(self):
        text = "SELECT loc, value FROM sensors USE SNAPSHOT WITH ERROR 0.5"
        assert format_query(parse_query(text)) == text

    @given(queries())
    @settings(max_examples=150, deadline=None)
    def test_round_trip(self, query):
        """parse(format(q)) reproduces q exactly."""
        reparsed = parse_query(format_query(query))
        # select lists only matter for drill-through
        if query.is_aggregate:
            assert reparsed.aggregate is query.aggregate
            assert reparsed.aggregate_attribute == query.aggregate_attribute
        else:
            assert reparsed.select == query.select
        assert reparsed.region == query.region
        assert reparsed.value_predicate == query.value_predicate
        assert reparsed.sample_interval == query.sample_interval
        assert reparsed.duration == query.duration
        assert reparsed.use_snapshot == query.use_snapshot
        assert reparsed.snapshot_threshold == query.snapshot_threshold
