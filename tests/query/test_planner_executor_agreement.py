"""Property: the planner's responder estimates bound the executor.

The cost-based admission in the serving layer is only honest if the
planner never *under*-counts: for any spatial region, the responders it
plans for must be a superset of the nodes the executor actually asks to
report (tree membership, value predicates and model misses can only
shrink the set).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.query.ast import Aggregate, Query
from repro.query.planner import QueryPlanner
from repro.query.spatial import Rect
from tests.conftest import make_runtime

coords = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)


@st.composite
def rects(draw):
    x0, x1 = sorted((draw(coords), draw(coords)))
    y0, y1 = sorted((draw(coords), draw(coords)))
    return Rect(x0, y0, x1, y1)


@pytest.fixture(scope="module")
def planner() -> QueryPlanner:
    runtime = make_runtime(n_nodes=20, n_classes=2, seed=13)
    runtime.train(duration=10)
    runtime.run_election()
    return QueryPlanner(runtime)


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    region=rects(),
    aggregate=st.sampled_from([None, Aggregate.AVG, Aggregate.COUNT]),
)
def test_planned_snapshot_responders_cover_actual(planner, region, aggregate):
    query = Query(region=region, aggregate=aggregate, use_snapshot=True)
    planned = planner.snapshot_responders(query)
    result = planner.executor.execute(query, sink=0, charge_energy=False)
    assert result.responders <= planned


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(region=rects())
def test_planned_regular_responders_cover_actual(planner, region):
    query = Query(region=region, use_snapshot=False)
    planned = planner.regular_responders(query)
    result = planner.executor.execute(query, sink=0, charge_energy=False)
    assert result.responders <= planned


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(region=rects())
def test_selectivity_consistent_with_responders(planner, region):
    query = Query(region=region)
    alive = len(planner.runtime.alive_ids())
    assert planner.spatial_selectivity(query) == pytest.approx(
        len(planner.regular_responders(query)) / alive
    )
