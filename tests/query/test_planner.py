"""Tests for the energy-based query planner."""

from __future__ import annotations

import math
from types import SimpleNamespace

import numpy as np
import pytest
from repro.core.config import ProtocolConfig
from repro.core.multi_resolution import MultiResolutionSnapshot
from repro.core.runtime import SnapshotRuntime
from repro.data.series import Dataset
from repro.network.topology import Topology
from repro.query.ast import Query
from repro.query.planner import QueryPlanner
from repro.query.spatial import Everywhere, Rect


def planned_runtime(n: int = 10):
    """Strongly correlated nodes in a row; snapshot collapses to few reps."""
    base = np.linspace(0.0, 40.0, 400)
    values = np.stack([base + 0.2 * i for i in range(n)])
    dataset = Dataset(values)
    topology = Topology([((i + 0.5) / n, 0.5) for i in range(n)], ranges=2.0)
    runtime = SnapshotRuntime(
        topology, dataset, ProtocolConfig(threshold=5.0), seed=2
    )
    runtime.train(duration=10)
    runtime.run_election()
    return runtime


class TestCostEstimates:
    def test_regular_counts_matching_nodes(self):
        runtime = planned_runtime()
        planner = QueryPlanner(runtime)
        everywhere = Query(region=Everywhere())
        west = Query(region=Rect(0.0, 0.0, 0.5, 1.0))
        assert planner.estimate_regular_cost(everywhere) > planner.estimate_regular_cost(west)

    def test_snapshot_estimate_below_regular_for_broad_queries(self):
        runtime = planned_runtime()
        planner = QueryPlanner(runtime)
        query = Query(region=Everywhere())
        assert planner.estimate_snapshot_cost(query) < planner.estimate_regular_cost(query)

    def test_aggregates_cost_less_than_drill_through(self):
        runtime = planned_runtime()
        planner = QueryPlanner(runtime)
        from repro.query.ast import Aggregate

        drill = Query(region=Everywhere())
        agg = Query(region=Everywhere(), aggregate=Aggregate.SUM)
        assert planner.estimate_regular_cost(agg) <= planner.estimate_regular_cost(drill)

    def test_mean_hops_empty_topology_fails_cleanly(self):
        """No nodes means no ranges: a ValueError, not min() blowing up."""

        class EmptyTopology:
            node_ids: list[int] = []

            def __len__(self) -> int:
                return 0

        planner = QueryPlanner(
            SimpleNamespace(topology=EmptyTopology()), executor=SimpleNamespace()
        )
        with pytest.raises(ValueError, match="empty topology"):
            planner._mean_hops()

    def test_estimate_cost_fields(self):
        runtime = planned_runtime()
        planner = QueryPlanner(runtime)
        from repro.query.ast import Aggregate

        west = Query(region=Rect(0.0, 0.0, 0.5, 1.0), aggregate=Aggregate.AVG)
        estimate = planner.estimate_cost(west, use_snapshot=False)
        assert not estimate.use_snapshot
        assert estimate.responders == len(planner.regular_responders(west))
        assert 0.0 < estimate.selectivity < 1.0
        assert estimate.nodes_touched <= len(runtime.alive_ids())
        assert estimate.bytes_on_network > 0
        assert estimate.total_transmissions == estimate.transmissions * estimate.rounds
        # aggregates share one path; drill-through forwards per responder
        drill = Query(region=Rect(0.0, 0.0, 0.5, 1.0))
        assert (
            planner.estimate_cost(drill, use_snapshot=False).bytes_on_network
            > estimate.bytes_on_network
        )

    def test_snapshot_estimate_counts_fewer_responders(self):
        runtime = planned_runtime()
        planner = QueryPlanner(runtime)
        query = Query(region=Everywhere())
        regular = planner.estimate_cost(query, use_snapshot=False)
        snapshot = planner.estimate_cost(query, use_snapshot=True)
        assert snapshot.responders < regular.responders
        assert snapshot.bytes_on_network < regular.bytes_on_network


class TestPlanning:
    def test_broad_query_upgraded_to_snapshot(self):
        runtime = planned_runtime()
        planner = QueryPlanner(runtime)
        plan, result = planner.execute(Query(region=Everywhere()), sink=0)
        assert plan.use_snapshot
        assert result.query.use_snapshot
        assert "beats" in plan.reason

    def test_tight_threshold_demoted_to_regular(self):
        runtime = planned_runtime()  # snapshot elected at T=5
        planner = QueryPlanner(runtime)
        query = Query(
            region=Everywhere(), use_snapshot=True, snapshot_threshold=0.001
        )
        plan, result = planner.execute(query, sink=0)
        assert plan.needs_election
        assert not plan.use_snapshot
        assert math.isinf(plan.estimated_snapshot_cost)
        assert not result.query.use_snapshot  # executed regularly, legally

    def test_coarse_threshold_served_by_snapshot(self):
        runtime = planned_runtime()
        planner = QueryPlanner(runtime)
        query = Query(
            region=Everywhere(), use_snapshot=True, snapshot_threshold=100.0
        )
        plan, __ = planner.execute(query, sink=0)
        assert not plan.needs_election

    def test_multi_resolution_routing(self):
        runtime = planned_runtime()
        runtime.advance_to(runtime.now + 1)
        multi = MultiResolutionSnapshot(runtime, [1.0, 50.0])
        multi.build()
        planner = QueryPlanner(runtime, multi=multi)
        fine = Query(region=Everywhere(), use_snapshot=True, snapshot_threshold=0.1)
        assert planner.plan(fine).needs_election
        coarse = Query(region=Everywhere(), use_snapshot=True, snapshot_threshold=75.0)
        assert not planner.plan(coarse).needs_election

    def test_multi_resolution_tighter_view_executes_without_crash(self):
        """Regression: a view tighter than the runtime threshold used to
        crash ``execute`` — the planned query kept ``snapshot_threshold``
        and tripped the executor's single-snapshot reuse check."""
        runtime = planned_runtime()  # runtime elected at T=5.0
        runtime.advance_to(runtime.now + 1)
        multi = MultiResolutionSnapshot(runtime, [1.0, 50.0])
        multi.build()
        planner = QueryPlanner(runtime, multi=multi)
        # T=2.0 resolves to the 1.0 view, which is tighter than 5.0
        query = Query(region=Everywhere(), use_snapshot=True, snapshot_threshold=2.0)
        plan = planner.plan(query)
        assert not plan.needs_election
        plan, result = planner.execute(query, sink=0)  # must not raise
        assert result.query.snapshot_threshold is None
        assert result.query.use_snapshot == plan.use_snapshot

    def test_rewrite_keeps_threshold_without_multi(self):
        runtime = planned_runtime()
        planner = QueryPlanner(runtime)
        query = Query(region=Everywhere(), use_snapshot=True, snapshot_threshold=100.0)
        plan = planner.plan(query)
        rewritten = planner.rewrite(query, plan)
        if plan.use_snapshot:
            # legal against the single snapshot: the executor re-checks it
            assert rewritten.snapshot_threshold == 100.0
        else:
            assert rewritten.snapshot_threshold is None

    def test_plan_execution_matches_estimates_direction(self):
        """The mode the planner picks really is the cheaper one."""
        runtime = planned_runtime()
        planner = QueryPlanner(runtime)
        query = Query(region=Everywhere())
        plan = planner.plan(query)
        from dataclasses import replace

        regular = planner.executor.execute(
            replace(query, use_snapshot=False), sink=0, charge_energy=False
        )
        snapshot = planner.executor.execute(
            replace(query, use_snapshot=True), sink=0, charge_energy=False
        )
        actual_cheaper_is_snapshot = (
            snapshot.n_participants < regular.n_participants
        )
        assert plan.use_snapshot == actual_cheaper_is_snapshot
