"""Tests for TAG-style aggregation trees."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.links import GlobalLoss
from repro.network.topology import Topology, grid_topology
from repro.query.aggregation_tree import AggregationTree


def line_topology(n: int, spacing: float = 0.1, reach: float = 0.15) -> Topology:
    return Topology([(spacing * i, 0.0) for i in range(n)], ranges=reach)


class TestConstruction:
    def test_single_hop_star(self):
        topo = grid_topology(3, transmission_range=2.0)
        tree = AggregationTree.build(
            topo, sink=4, alive=set(topo.node_ids), rng=np.random.default_rng(0)
        )
        assert tree.members == frozenset(topo.node_ids)
        assert all(tree.parent(n) == 4 for n in topo.node_ids if n != 4)
        assert tree.depths[0] == 1

    def test_multi_hop_line(self):
        topo = line_topology(5)
        tree = AggregationTree.build(
            topo, sink=0, alive=set(topo.node_ids), rng=np.random.default_rng(0)
        )
        assert tree.path_to_sink(4) == [4, 3, 2, 1, 0]
        assert tree.depths[4] == 4

    def test_dead_nodes_break_the_flood(self):
        topo = line_topology(5)
        tree = AggregationTree.build(
            topo, sink=0, alive={0, 1, 3, 4}, rng=np.random.default_rng(0)
        )
        # node 2 is dead: nodes 3 and 4 are unreachable
        assert 3 not in tree.members
        assert 4 not in tree.members

    def test_dead_sink_rejected(self):
        topo = line_topology(3)
        with pytest.raises(ValueError):
            AggregationTree.build(topo, sink=0, alive={1, 2}, rng=np.random.default_rng(0))

    def test_total_loss_yields_singleton(self):
        topo = line_topology(4)
        tree = AggregationTree.build(
            topo,
            sink=0,
            alive=set(topo.node_ids),
            rng=np.random.default_rng(0),
            loss_model=GlobalLoss(1.0),
        )
        assert tree.members == frozenset({0})

    def test_prefer_chooses_representative_parent(self):
        # nodes 1 and 2 both reach node 3; node 2 is preferred
        topo = Topology(
            [(0.0, 0.0), (0.1, 0.05), (0.1, -0.05), (0.2, 0.0)], ranges=0.15
        )
        rng = np.random.default_rng(0)
        plain = AggregationTree.build(topo, 0, set(topo.node_ids), rng)
        assert plain.parent(3) == 1  # smallest id wins by default
        preferred = AggregationTree.build(
            topo, 0, set(topo.node_ids), np.random.default_rng(0), prefer={2}
        )
        assert preferred.parent(3) == 2


class TestRouters:
    def test_direct_responder_needs_no_router(self):
        topo = grid_topology(2, transmission_range=2.0)
        tree = AggregationTree.build(
            topo, sink=0, alive=set(topo.node_ids), rng=np.random.default_rng(0)
        )
        assert tree.routers_for([3]) == frozenset()

    def test_line_routers(self):
        topo = line_topology(5)
        tree = AggregationTree.build(
            topo, sink=0, alive=set(topo.node_ids), rng=np.random.default_rng(0)
        )
        assert tree.routers_for([4]) == frozenset({1, 2, 3})

    def test_responders_excluded_from_routers(self):
        topo = line_topology(5)
        tree = AggregationTree.build(
            topo, sink=0, alive=set(topo.node_ids), rng=np.random.default_rng(0)
        )
        assert tree.routers_for([4, 2]) == frozenset({1, 3})

    def test_unreachable_responder_ignored(self):
        topo = line_topology(5)
        tree = AggregationTree.build(
            topo, sink=0, alive={0, 1}, rng=np.random.default_rng(0)
        )
        assert tree.routers_for([4]) == frozenset()

    def test_path_of_nonmember_raises(self):
        topo = line_topology(3)
        tree = AggregationTree.build(
            topo, sink=0, alive={0, 1}, rng=np.random.default_rng(0)
        )
        with pytest.raises(KeyError):
            tree.path_to_sink(2)

    def test_subtree_size(self):
        topo = line_topology(4)
        tree = AggregationTree.build(
            topo, sink=0, alive=set(topo.node_ids), rng=np.random.default_rng(0)
        )
        assert tree.subtree_size(1) == 3  # nodes 1, 2, 3 route through 1
        assert tree.subtree_size(0) == 4
