"""Tests for TAG-style aggregation trees."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.links import GlobalLoss
from repro.network.topology import Topology, grid_topology
from repro.query.aggregation_tree import AggregationTree


def line_topology(n: int, spacing: float = 0.1, reach: float = 0.15) -> Topology:
    return Topology([(spacing * i, 0.0) for i in range(n)], ranges=reach)


class TestConstruction:
    def test_single_hop_star(self):
        topo = grid_topology(3, transmission_range=2.0)
        tree = AggregationTree.build(
            topo, sink=4, alive=set(topo.node_ids), rng=np.random.default_rng(0)
        )
        assert tree.members == frozenset(topo.node_ids)
        assert all(tree.parent(n) == 4 for n in topo.node_ids if n != 4)
        assert tree.depths[0] == 1

    def test_multi_hop_line(self):
        topo = line_topology(5)
        tree = AggregationTree.build(
            topo, sink=0, alive=set(topo.node_ids), rng=np.random.default_rng(0)
        )
        assert tree.path_to_sink(4) == [4, 3, 2, 1, 0]
        assert tree.depths[4] == 4

    def test_dead_nodes_break_the_flood(self):
        topo = line_topology(5)
        tree = AggregationTree.build(
            topo, sink=0, alive={0, 1, 3, 4}, rng=np.random.default_rng(0)
        )
        # node 2 is dead: nodes 3 and 4 are unreachable
        assert 3 not in tree.members
        assert 4 not in tree.members

    def test_dead_sink_rejected(self):
        topo = line_topology(3)
        with pytest.raises(ValueError):
            AggregationTree.build(topo, sink=0, alive={1, 2}, rng=np.random.default_rng(0))

    def test_total_loss_yields_singleton(self):
        topo = line_topology(4)
        tree = AggregationTree.build(
            topo,
            sink=0,
            alive=set(topo.node_ids),
            rng=np.random.default_rng(0),
            loss_model=GlobalLoss(1.0),
        )
        assert tree.members == frozenset({0})

    def test_prefer_chooses_representative_parent(self):
        # nodes 1 and 2 both reach node 3; node 2 is preferred
        topo = Topology(
            [(0.0, 0.0), (0.1, 0.05), (0.1, -0.05), (0.2, 0.0)], ranges=0.15
        )
        rng = np.random.default_rng(0)
        plain = AggregationTree.build(topo, 0, set(topo.node_ids), rng)
        assert plain.parent(3) == 1  # smallest id wins by default
        preferred = AggregationTree.build(
            topo, 0, set(topo.node_ids), np.random.default_rng(0), prefer={2}
        )
        assert preferred.parent(3) == 2


class TestRouters:
    def test_direct_responder_needs_no_router(self):
        topo = grid_topology(2, transmission_range=2.0)
        tree = AggregationTree.build(
            topo, sink=0, alive=set(topo.node_ids), rng=np.random.default_rng(0)
        )
        assert tree.routers_for([3]) == frozenset()

    def test_line_routers(self):
        topo = line_topology(5)
        tree = AggregationTree.build(
            topo, sink=0, alive=set(topo.node_ids), rng=np.random.default_rng(0)
        )
        assert tree.routers_for([4]) == frozenset({1, 2, 3})

    def test_responders_excluded_from_routers(self):
        topo = line_topology(5)
        tree = AggregationTree.build(
            topo, sink=0, alive=set(topo.node_ids), rng=np.random.default_rng(0)
        )
        assert tree.routers_for([4, 2]) == frozenset({1, 3})

    def test_unreachable_responder_ignored(self):
        topo = line_topology(5)
        tree = AggregationTree.build(
            topo, sink=0, alive={0, 1}, rng=np.random.default_rng(0)
        )
        assert tree.routers_for([4]) == frozenset()

    def test_path_of_nonmember_raises(self):
        topo = line_topology(3)
        tree = AggregationTree.build(
            topo, sink=0, alive={0, 1}, rng=np.random.default_rng(0)
        )
        with pytest.raises(KeyError):
            tree.path_to_sink(2)

    def test_subtree_size(self):
        topo = line_topology(4)
        tree = AggregationTree.build(
            topo, sink=0, alive=set(topo.node_ids), rng=np.random.default_rng(0)
        )
        assert tree.subtree_size(1) == 3  # nodes 1, 2, 3 route through 1
        assert tree.subtree_size(0) == 4


def naive_path(tree: AggregationTree, member: int) -> list[int]:
    """The pre-memoization walk: follow parents until the sink."""
    path = [member]
    while path[-1] != tree.sink:
        path.append(tree.parents[path[-1]])
    return path


class TestMemoization:
    """Memoized paths/sizes must match the naive walk on a pinned tree."""

    def pinned_tree(self) -> AggregationTree:
        topo = grid_topology(5, transmission_range=1.1)  # multi-hop
        return AggregationTree.build(
            topo, sink=0, alive=set(topo.node_ids), rng=np.random.default_rng(7)
        )

    def test_paths_match_naive_walk(self):
        tree = self.pinned_tree()
        for member in sorted(tree.members):
            assert tree.path_to_sink(member) == naive_path(tree, member)

    def test_returned_path_is_a_private_copy(self):
        tree = self.pinned_tree()
        first = tree.path_to_sink(24)
        first.append(-1)  # caller mutation must not poison the memo
        assert tree.path_to_sink(24) == naive_path(tree, 24)

    def test_routers_match_naive_union(self):
        tree = self.pinned_tree()
        for responders in ([24], [24, 12], [6, 18, 23], sorted(tree.members)):
            expected: set[int] = set()
            for responder in responders:
                expected.update(naive_path(tree, responder)[1:-1])
            expected -= set(responders)
            assert tree.routers_for(responders) == frozenset(expected)

    def test_subtree_sizes_match_naive_counts(self):
        tree = self.pinned_tree()
        for node in sorted(tree.members):
            expected = sum(
                1 for member in tree.members if node in naive_path(tree, member)
            )
            assert tree.subtree_size(node) == expected
        assert tree.subtree_size(10_000) == 0  # non-member

    def test_handmade_tree_without_depths(self):
        # subtree_size must derive depths when the dict is omitted
        tree = AggregationTree(sink=0, parents={0: 0, 1: 0, 2: 1, 3: 1})
        assert tree.subtree_size(1) == 3
        assert tree.subtree_size(0) == 4
        assert tree.path_to_sink(3) == [3, 1, 0]
