"""End-to-end query-layer integration: parse → execute → snoop.

These tests join the parser, executor, radio and model layer: query
text drives real networks, and the side channel the paper relies on —
neighbors snooping query reports to fine-tune models (§3, §6.3) —
actually updates the caches.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ProtocolConfig
from repro.core.runtime import SnapshotRuntime
from repro.data.series import Dataset
from repro.network.topology import Topology
from repro.query.executor import QueryExecutor
from repro.query.parser import parse_query


def ramp_runtime(n: int = 9, snoop: float = 1.0, seed: int = 4) -> SnapshotRuntime:
    base = np.linspace(0.0, 50.0, 400)
    values = np.stack([base + 2.0 * i for i in range(n)])
    dataset = Dataset(values)
    side = int(np.ceil(np.sqrt(n)))
    positions = [
        ((0.5 + col) / side, (0.5 + row) / side)
        for row in range(side)
        for col in range(side)
    ][:n]
    topology = Topology(positions, ranges=2.0)
    return SnapshotRuntime(
        topology, dataset,
        ProtocolConfig(threshold=8.0, snoop_probability=snoop),
        seed=seed,
    )


class TestParsedQueriesEndToEnd:
    def test_drill_through_with_spatial_filter(self):
        runtime = ramp_runtime()
        runtime.train(duration=10)
        executor = QueryExecutor(runtime)
        result = executor.execute(
            parse_query(
                "SELECT loc, value FROM sensors WHERE loc IN RECT(0,0,0.5,0.5)"
            ),
            sink=8,
        )
        expected = set(runtime.topology.nodes_in_rect(0.0, 0.0, 0.5, 0.5))
        assert set(result.reports) == expected

    def test_aggregate_over_snapshot_approximates_truth(self):
        runtime = ramp_runtime()
        runtime.train(duration=10)
        runtime.run_election()
        executor = QueryExecutor(runtime)
        regular = executor.execute(
            parse_query("SELECT AVG(value) FROM sensors"), sink=0
        )
        snapshot = executor.execute(
            parse_query("SELECT AVG(value) FROM sensors USE SNAPSHOT"), sink=0
        )
        assert snapshot.aggregate_value == pytest.approx(
            regular.aggregate_value, abs=4.0
        )
        assert snapshot.n_participants <= regular.n_participants

    def test_sampling_clauses_drive_rounds(self):
        runtime = ramp_runtime()
        runtime.train(duration=10)
        executor = QueryExecutor(runtime)
        query = parse_query(
            "SELECT loc, value FROM sensors SAMPLE INTERVAL 1s FOR 5s"
        )
        before = runtime.stats.sent_of_kind("DataReport")
        result = executor.execute(query, sink=0)
        assert result.rounds == 5
        assert runtime.stats.sent_of_kind("DataReport") - before >= 5 * (
            len(result.responders) - 1
        )


class TestSnoopingSideChannel:
    def test_query_reports_update_neighbor_models(self):
        runtime = ramp_runtime(snoop=1.0)
        # no training at all: models start empty
        executor = QueryExecutor(runtime)
        assert runtime.nodes[0].store.model(1) is None
        executor.execute(parse_query("SELECT loc, value FROM sensors"), sink=8)
        runtime.advance_to(runtime.now + 1)  # let the radio deliveries fire
        # node 0 overheard node 1's report and cached the pair
        assert runtime.nodes[0].store.model(1) is not None

    def test_zero_snoop_probability_learns_nothing(self):
        runtime = ramp_runtime(snoop=0.0)
        executor = QueryExecutor(runtime)
        executor.execute(parse_query("SELECT loc, value FROM sensors"), sink=8)
        runtime.advance_to(runtime.now + 1)
        assert runtime.nodes[0].store.model(1) is None

    def test_partial_snooping_statistics(self):
        runtime = ramp_runtime(snoop=0.3, seed=11)
        executor = QueryExecutor(runtime)
        for _ in range(30):
            executor.execute(parse_query("SELECT loc, value FROM sensors"), sink=8)
            runtime.advance_to(runtime.now + 1)
        line_lengths = [
            len(runtime.nodes[0].store.policy.line(j) or [])
            for j in (1, 2, 3)
        ]
        # roughly 30% of 30 reports each — loose statistical band
        assert all(2 <= length <= 20 for length in line_lengths)

    def test_estimated_reports_never_poison_models(self):
        runtime = ramp_runtime(snoop=1.0)
        runtime.train(duration=10)
        runtime.run_election()
        executor = QueryExecutor(runtime)
        # snapshot queries carry estimated member bundles
        executor.execute(
            parse_query("SELECT loc, value FROM sensors USE SNAPSHOT"), sink=0
        )
        # no cache line may contain a pair recorded from an estimated
        # or forwarded report: we can't observe that directly, but the
        # runtime must still produce accurate estimates afterwards
        for node in runtime.nodes.values():
            for neighbor in node.store.known_neighbors():
                estimate = node.store.estimate(neighbor, node.value_fn())
                truth = runtime.value_of(neighbor)
                assert estimate == pytest.approx(truth, abs=10.0)
