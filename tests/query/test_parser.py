"""Tests for the SQL-dialect parser (§3.1)."""

from __future__ import annotations

import pytest

from repro.query.ast import Aggregate, Comparison, Query
from repro.query.parser import QuerySyntaxError, parse_query
from repro.query.spatial import Circle, Everywhere, Rect, named_region


class TestPaperExample:
    def test_the_section31_query(self):
        query = parse_query(
            "SELECT loc, temperature FROM sensors "
            "WHERE loc in SHOUTH_EAST_QUANDRANT "
            "SAMPLE INTERVAL 1sec for 5min "
            "USE SNAPSHOT"
        )
        assert query.select == ("loc", "temperature")
        assert query.aggregate is None
        assert query.region == named_region("SOUTH_EAST_QUADRANT")
        assert query.sample_interval == 1.0
        assert query.duration == 300.0
        assert query.rounds == 300
        assert query.use_snapshot


class TestSelection:
    def test_plain_projection(self):
        query = parse_query("SELECT loc FROM sensors")
        assert query.select == ("loc",)
        assert not query.is_aggregate

    def test_aggregates(self):
        for name, agg in [
            ("SUM", Aggregate.SUM),
            ("AVG", Aggregate.AVG),
            ("MIN", Aggregate.MIN),
            ("MAX", Aggregate.MAX),
            ("COUNT", Aggregate.COUNT),
        ]:
            query = parse_query(f"SELECT {name}(temperature) FROM sensors")
            assert query.aggregate is agg
            assert query.aggregate_attribute == "temperature"

    def test_count_star(self):
        query = parse_query("SELECT COUNT(*) FROM sensors")
        assert query.aggregate is Aggregate.COUNT
        assert query.aggregate_attribute == "value"

    def test_aggregate_named_column_without_parens_is_projection(self):
        query = parse_query("SELECT sum FROM sensors")
        assert query.aggregate is None
        assert query.select == ("sum",)


class TestWhere:
    def test_rect_region(self):
        query = parse_query(
            "SELECT loc FROM sensors WHERE loc IN RECT(0.1, 0.2, 0.5, 0.9)"
        )
        assert query.region == Rect(0.1, 0.2, 0.5, 0.9)

    def test_circle_region(self):
        query = parse_query(
            "SELECT loc FROM sensors WHERE loc IN CIRCLE(0.5, 0.5, 0.2)"
        )
        assert query.region == Circle(0.5, 0.5, 0.2)

    def test_value_predicate(self):
        query = parse_query("SELECT loc FROM sensors WHERE temperature >= 5")
        assert query.value_predicate is not None
        assert query.value_predicate.op is Comparison.GE
        assert query.value_predicate.matches(5.0)
        assert not query.value_predicate.matches(4.9)

    def test_combined_conditions(self):
        query = parse_query(
            "SELECT loc FROM sensors "
            "WHERE loc IN NORTH_WEST_QUADRANT AND humidity < 0.8"
        )
        assert query.region == named_region("NORTH_WEST_QUADRANT")
        assert query.value_predicate.attribute == "humidity"

    def test_no_where_means_everywhere(self):
        query = parse_query("SELECT loc FROM sensors")
        assert isinstance(query.region, Everywhere)

    def test_two_spatial_conditions_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query(
                "SELECT loc FROM sensors "
                "WHERE loc IN NORTH_WEST_QUADRANT AND loc IN SOUTH_EAST_QUADRANT"
            )


class TestAcquisitionClauses:
    @pytest.mark.parametrize(
        "text,seconds",
        [("10s", 10.0), ("1sec", 1.0), ("2 min", 120.0), ("1 hour", 3600.0)],
    )
    def test_time_units(self, text, seconds):
        query = parse_query(
            f"SELECT loc FROM sensors SAMPLE INTERVAL {text} FOR 2 hours"
        )
        assert query.sample_interval == seconds

    def test_snapshot_with_error(self):
        query = parse_query("SELECT loc FROM sensors USE SNAPSHOT WITH ERROR 0.5")
        assert query.use_snapshot
        assert query.snapshot_threshold == 0.5

    def test_missing_for_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("SELECT loc FROM sensors SAMPLE INTERVAL 1s")


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "SELECT FROM sensors",
            "UPDATE sensors SET x = 1",
            "SELECT loc FROM sensors garbage",
            "SELECT loc FROM sensors WHERE loc IN RECT(0.1, 0.2)",
            "SELECT loc FROM sensors SAMPLE INTERVAL fast FOR 5min",
            "SELECT loc FROM sensors USE",
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(QuerySyntaxError):
            parse_query(text)

    def test_unexpected_character(self):
        with pytest.raises(QuerySyntaxError, match="unexpected character"):
            parse_query("SELECT loc FROM sensors; DROP TABLE sensors")


class TestQueryValidation:
    def test_threshold_without_snapshot_rejected(self):
        with pytest.raises(ValueError):
            Query(use_snapshot=False, snapshot_threshold=1.0)

    def test_nonpositive_interval_rejected(self):
        with pytest.raises(ValueError):
            Query(sample_interval=0.0)

    def test_rounds_computation(self):
        assert Query().rounds == 1
        assert Query(sample_interval=2.0, duration=10.0).rounds == 5
        assert Query(sample_interval=10.0, duration=5.0).rounds == 1
