"""Tests for regular vs snapshot query execution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ProtocolConfig
from repro.core.runtime import SnapshotRuntime
from repro.core.status import NodeMode
from repro.data.series import Dataset
from repro.network.topology import Topology
from repro.query.ast import Aggregate, Comparison, Query, ValuePredicate
from repro.query.coverage import CoverageSeries
from repro.query.executor import QueryExecutor
from repro.query.spatial import Everywhere, Rect


def clustered_runtime(threshold: float = 5.0, battery: float | None = None):
    """Six all-in-range nodes with two value clusters at known locations.

    Nodes 0-2 sit in the west half, nodes 3-5 in the east half.
    Values: nodes 0-4 near-identical ramps; node 5 is a scaled/offset
    ramp that always stays above 100 (for value-predicate tests).
    """
    length = 200
    base = np.linspace(0.0, 20.0, length)
    values = np.stack(
        [base, base + 0.5, base + 1.0, base + 1.5, base + 2.0, base * 40.0 + 500.0]
    )
    dataset = Dataset(values)
    positions = [
        (0.1, 0.5), (0.2, 0.5), (0.3, 0.5),
        (0.7, 0.5), (0.8, 0.5), (0.9, 0.5),
    ]
    topology = Topology(positions, ranges=2.0)
    runtime = SnapshotRuntime(
        topology, dataset, ProtocolConfig(threshold=threshold),
        seed=3, battery_capacity=battery,
    )
    runtime.train(duration=10)
    runtime.run_election()
    return runtime


WEST = Rect(0.0, 0.0, 0.5, 1.0)
EAST = Rect(0.5, 0.0, 1.0, 1.0)


class TestRegularExecution:
    def test_all_matching_nodes_respond(self):
        runtime = clustered_runtime()
        executor = QueryExecutor(runtime)
        result = executor.execute(Query(region=WEST), charge_energy=False)
        assert result.responders == frozenset({0, 1, 2})
        assert set(result.reports) == {0, 1, 2}
        assert all(not estimated for _, estimated in result.reports.values())

    def test_true_values_reported(self):
        runtime = clustered_runtime()
        executor = QueryExecutor(runtime)
        result = executor.execute(Query(region=WEST), charge_energy=False)
        for origin, (value, _) in result.reports.items():
            assert value == runtime.value_of(origin)

    def test_value_predicate_filters(self):
        runtime = clustered_runtime()
        executor = QueryExecutor(runtime)
        predicate = ValuePredicate("value", Comparison.GT, 100.0)
        result = executor.execute(
            Query(region=Everywhere(), value_predicate=predicate),
            charge_energy=False,
        )
        assert result.responders == frozenset({5})

    def test_aggregate_sum(self):
        runtime = clustered_runtime()
        executor = QueryExecutor(runtime)
        result = executor.execute(
            Query(aggregate=Aggregate.SUM, region=WEST), charge_energy=False
        )
        expected = sum(runtime.value_of(i) for i in (0, 1, 2))
        assert result.aggregate_value == pytest.approx(expected)

    def test_aggregate_count_empty_region(self):
        runtime = clustered_runtime()
        executor = QueryExecutor(runtime)
        result = executor.execute(
            Query(aggregate=Aggregate.COUNT, region=Rect(0.4, 0.0, 0.45, 0.1)),
            charge_energy=False,
        )
        assert result.aggregate_value == 0.0
        assert result.coverage() == 1.0  # nothing to cover


class TestSnapshotExecution:
    def test_fewer_participants_than_regular(self):
        runtime = clustered_runtime()
        executor = QueryExecutor(runtime)
        regular = executor.execute(Query(region=WEST), sink=3, charge_energy=False)
        snap = executor.execute(
            Query(region=WEST, use_snapshot=True), sink=3, charge_energy=False
        )
        assert snap.n_participants < regular.n_participants
        assert snap.n_participants >= 1

    def test_passive_nodes_never_respond(self):
        runtime = clustered_runtime()
        executor = QueryExecutor(runtime)
        result = executor.execute(
            Query(region=Everywhere(), use_snapshot=True), charge_energy=False
        )
        passive = {
            nid for nid, node in runtime.nodes.items()
            if node.mode is NodeMode.PASSIVE
        }
        assert not (result.responders & passive)

    def test_members_answered_by_estimates(self):
        runtime = clustered_runtime()
        executor = QueryExecutor(runtime)
        result = executor.execute(
            Query(region=Everywhere(), use_snapshot=True), charge_energy=False
        )
        # every node is answered for: its own report or its rep's estimate
        assert set(result.reports) == set(range(6))
        estimated = [o for o, (_, est) in result.reports.items() if est]
        assert estimated  # at least the represented ones

    def test_estimates_close_to_truth(self):
        runtime = clustered_runtime(threshold=5.0)
        executor = QueryExecutor(runtime)
        result = executor.execute(
            Query(region=Everywhere(), use_snapshot=True), charge_energy=False
        )
        for origin, (value, estimated) in result.reports.items():
            if estimated:
                truth = runtime.value_of(origin)
                assert (value - truth) ** 2 <= 5.0 * 4  # loose sanity factor

    def test_member_outside_region_not_reported(self):
        runtime = clustered_runtime()
        executor = QueryExecutor(runtime)
        result = executor.execute(
            Query(region=EAST, use_snapshot=True), charge_energy=False
        )
        assert set(result.reports) <= {3, 4, 5}

    def test_threshold_reuse_rule_enforced(self):
        runtime = clustered_runtime(threshold=5.0)
        executor = QueryExecutor(runtime)
        fine = Query(use_snapshot=True, snapshot_threshold=10.0)
        executor.execute(fine, charge_energy=False)  # coarser: allowed
        tight = Query(use_snapshot=True, snapshot_threshold=1.0)
        with pytest.raises(ValueError, match="tighter"):
            executor.execute(tight, charge_energy=False)


class TestEnergyAndMessages:
    def test_charged_execution_sends_messages(self):
        runtime = clustered_runtime()
        executor = QueryExecutor(runtime)
        before = runtime.stats.sent_of_kind("DataReport")
        result = executor.execute(Query(region=WEST), sink=5)
        sent = runtime.stats.sent_of_kind("DataReport") - before
        assert sent == len(result.responders - {5})

    def test_uncharged_execution_sends_nothing(self):
        runtime = clustered_runtime()
        executor = QueryExecutor(runtime)
        before = runtime.stats.total_sent()
        executor.execute(Query(region=WEST), charge_energy=False)
        assert runtime.stats.total_sent() == before

    def test_rounds_multiply_cost(self):
        runtime = clustered_runtime()
        executor = QueryExecutor(runtime)
        before = runtime.stats.sent_of_kind("DataReport")
        result = executor.execute(Query(region=WEST), sink=5, rounds=3)
        sent = runtime.stats.sent_of_kind("DataReport") - before
        assert sent == 3 * len(result.responders - {5})
        assert result.rounds == 3

    def test_dead_sink_rejected(self):
        runtime = clustered_runtime(battery=50.0)
        executor = QueryExecutor(runtime)
        runtime.radio.node(2).battery.draw(1e9)
        with pytest.raises(ValueError):
            executor.execute(Query(), sink=2, charge_energy=False)

    def test_invalid_rounds(self):
        runtime = clustered_runtime()
        with pytest.raises(ValueError):
            QueryExecutor(runtime).execute(Query(), rounds=0)


class TestCoverage:
    def test_full_coverage_when_everyone_alive(self):
        runtime = clustered_runtime()
        executor = QueryExecutor(runtime)
        result = executor.execute(Query(region=WEST), charge_energy=False)
        assert result.coverage() == 1.0

    def test_dead_node_lowers_regular_coverage(self):
        runtime = clustered_runtime(battery=100.0)
        executor = QueryExecutor(runtime)
        runtime.radio.node(1).battery.draw(1e9)
        result = executor.execute(Query(region=WEST), sink=0, charge_energy=False)
        assert result.coverage() == pytest.approx(2 / 3)

    def test_snapshot_covers_dead_member_via_estimate(self):
        runtime = clustered_runtime(battery=100.0)
        executor = QueryExecutor(runtime)
        # kill a PASSIVE node in the west; its representative still
        # answers for it from the model
        passive_west = next(
            nid for nid in (0, 1, 2)
            if runtime.nodes[nid].mode is NodeMode.PASSIVE
        )
        runtime.radio.node(passive_west).battery.draw(1e9)
        result = executor.execute(
            Query(region=WEST, use_snapshot=True), charge_energy=False
        )
        assert passive_west in result.reports
        assert result.coverage() == 1.0

    def test_coverage_series_accumulates(self):
        series = CoverageSeries()
        runtime = clustered_runtime()
        executor = QueryExecutor(runtime)
        for _ in range(3):
            series.record(executor.execute(Query(region=WEST), charge_energy=False))
        assert len(series) == 3
        assert series.mean == pytest.approx(1.0)
        assert series.area == pytest.approx(3.0)
        assert series.first_below(0.5) is None
        assert series.smoothed(window=2) == [1.0, 1.0, 1.0]
