"""Tests for mobility models and topology evolution."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.config import ProtocolConfig
from repro.core.runtime import SnapshotRuntime
from repro.data.series import Dataset
from repro.network.mobility import GaussianDrift, RandomWaypoint, apply_mobility
from repro.network.topology import Topology


class TestRandomWaypoint:
    def test_positions_stay_in_unit_square(self):
        model = RandomWaypoint(speed=0.1)
        rng = np.random.default_rng(0)
        positions = [(0.5, 0.5)] * 10
        for _ in range(50):
            positions = model.step(positions, dt=1.0, rng=rng)
            for x, y in positions:
                assert 0.0 <= x <= 1.0 and 0.0 <= y <= 1.0

    def test_speed_bounds_displacement(self):
        model = RandomWaypoint(speed=0.05)
        rng = np.random.default_rng(1)
        positions = [(0.5, 0.5)]
        moved = model.step(positions, dt=2.0, rng=rng)
        displacement = math.hypot(moved[0][0] - 0.5, moved[0][1] - 0.5)
        assert displacement <= 0.05 * 2.0 + 1e-9

    def test_nodes_eventually_move(self):
        model = RandomWaypoint(speed=0.1)
        rng = np.random.default_rng(2)
        positions = [(0.5, 0.5)] * 5
        positions = model.step(positions, dt=5.0, rng=rng)
        assert any((x, y) != (0.5, 0.5) for x, y in positions)

    def test_pause_halts_motion_at_waypoint(self):
        model = RandomWaypoint(speed=10.0, pause=100.0)
        rng = np.random.default_rng(3)
        # speed 10 reaches any waypoint within dt=1; then pauses
        first = model.step([(0.5, 0.5)], dt=1.0, rng=rng)
        second = model.step(first, dt=1.0, rng=rng)
        assert first == second  # pausing

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RandomWaypoint(speed=0.0)
        with pytest.raises(ValueError):
            RandomWaypoint(speed=1.0, pause=-1.0)


class TestGaussianDrift:
    def test_positions_stay_in_unit_square(self):
        model = GaussianDrift(sigma_per_unit_time=0.2)
        rng = np.random.default_rng(4)
        positions = [(0.01, 0.99)] * 20
        for _ in range(30):
            positions = model.step(positions, dt=1.0, rng=rng)
            for x, y in positions:
                assert 0.0 <= x < 1.0 and 0.0 <= y < 1.0

    def test_drift_scale(self):
        model = GaussianDrift(sigma_per_unit_time=0.01)
        rng = np.random.default_rng(5)
        positions = [(0.5, 0.5)] * 500
        moved = model.step(positions, dt=1.0, rng=rng)
        displacements = [math.hypot(x - 0.5, y - 0.5) for x, y in moved]
        # rms displacement ~ sigma * sqrt(2)
        rms = math.sqrt(sum(d * d for d in displacements) / len(displacements))
        assert rms == pytest.approx(0.01 * math.sqrt(2), rel=0.25)

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            GaussianDrift(sigma_per_unit_time=0.0)


class TestRuntimeIntegration:
    def make_runtime(self) -> SnapshotRuntime:
        base = np.linspace(0.0, 30.0, 600)
        values = np.stack([base + 0.4 * i for i in range(8)])
        dataset = Dataset(values)
        topology = Topology([(0.1 + 0.1 * i, 0.5) for i in range(8)], ranges=0.25)
        return SnapshotRuntime(
            topology, dataset,
            ProtocolConfig(threshold=5.0, heartbeat_period=20.0),
            seed=8,
        )

    def test_mobility_rebuilds_topology(self):
        runtime = self.make_runtime()
        before = [runtime.topology.position(i) for i in range(8)]
        apply_mobility(runtime, RandomWaypoint(speed=0.05), period=10.0)
        runtime.advance_to(50.0)
        after = [runtime.topology.position(i) for i in range(8)]
        assert before != after
        # protocol nodes see their new locations
        for node_id, node in runtime.nodes.items():
            assert node.location == runtime.topology.position(node_id)

    def test_stop_freezes_positions(self):
        runtime = self.make_runtime()
        task = apply_mobility(runtime, RandomWaypoint(speed=0.05), period=10.0)
        runtime.advance_to(30.0)
        frozen = [runtime.topology.position(i) for i in range(8)]
        task.stop()
        runtime.advance_to(100.0)
        assert [runtime.topology.position(i) for i in range(8)] == frozen

    def test_network_self_heals_under_mobility(self):
        """Nodes drifting out of their representative's range re-elect
        via heartbeat timeouts; the structure stays consistent."""
        runtime = self.make_runtime()
        runtime.train(duration=10)
        runtime.run_election()
        runtime.start_maintenance()
        apply_mobility(runtime, RandomWaypoint(speed=0.02), period=5.0)
        runtime.advance_to(runtime.now + 200)
        view = runtime.snapshot()
        assert 1 <= view.size <= 8
        from repro.core.status import NodeMode

        for node in runtime.nodes.values():
            assert node.mode is not None
            if node.mode is NodeMode.PASSIVE:
                assert node.representative_id is not None


class TestModelEdgeCases:
    def test_waypoint_legs_chain_without_pause(self):
        """With pause=0 a fast node strings together several legs in
        one step and keeps moving on the next."""
        model = RandomWaypoint(speed=5.0, pause=0.0)
        rng = np.random.default_rng(7)
        first = model.step([(0.2, 0.2)], dt=3.0, rng=rng)
        second = model.step(first, dt=3.0, rng=rng)
        assert first != second
        for x, y in first + second:
            assert 0.0 <= x <= 1.0 and 0.0 <= y <= 1.0

    def test_drift_reflection_contains_huge_jumps(self):
        """Jumps far past the borders reflect (then clip) into range."""
        model = GaussianDrift(sigma_per_unit_time=5.0)
        rng = np.random.default_rng(6)
        stepped = model.step([(0.0, 0.999)] * 50, dt=1.0, rng=rng)
        assert all(
            0.0 <= x <= 0.999999 and 0.0 <= y <= 0.999999 for x, y in stepped
        )


class TestObservabilityAndPersistence:
    def make_runtime(self) -> SnapshotRuntime:
        return TestRuntimeIntegration.make_runtime(self)

    def test_mobility_step_emits_trace(self):
        runtime = self.make_runtime()
        apply_mobility(runtime, GaussianDrift(sigma_per_unit_time=0.01), period=10.0)
        runtime.advance_to(35.0)
        assert runtime.simulator.trace.count("mobility.step") == 3

    def test_mobility_survives_checkpoint(self, tmp_path):
        """An armed mobility task checkpoints mid-motion and the resumed
        run tracks the uninterrupted one position for position."""
        reference = self.make_runtime()
        apply_mobility(reference, RandomWaypoint(speed=0.05), period=10.0)
        reference.advance_to(80.0)

        runtime = self.make_runtime()
        apply_mobility(runtime, RandomWaypoint(speed=0.05), period=10.0)
        runtime.advance_to(40.0)
        path = tmp_path / "mobile.ckpt"
        runtime.checkpoint(path)
        del runtime

        restored = SnapshotRuntime.restore(path)
        restored.advance_to(80.0)
        assert [restored.topology.position(i) for i in range(8)] == [
            reference.topology.position(i) for i in range(8)
        ]
        assert restored.state_digest().whole == reference.state_digest().whole
