"""Tests for link-loss models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.links import DistanceLoss, GlobalLoss, PERFECT_LINKS, PerLinkLoss
from repro.network.topology import Topology


class TestGlobalLoss:
    def test_zero_always_delivers(self):
        rng = np.random.default_rng(0)
        assert all(PERFECT_LINKS.delivered(0, 1, rng) for _ in range(100))

    def test_one_never_delivers(self):
        model = GlobalLoss(1.0)
        rng = np.random.default_rng(0)
        assert not any(model.delivered(0, 1, rng) for _ in range(100))

    def test_rate_statistics(self):
        """Empirical delivery rate tracks 1 - P_loss."""
        model = GlobalLoss(0.3)
        rng = np.random.default_rng(42)
        delivered = sum(model.delivered(0, 1, rng) for _ in range(20_000))
        assert delivered / 20_000 == pytest.approx(0.7, abs=0.02)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            GlobalLoss(1.5)


class TestPerLinkLoss:
    def test_override_applies_to_direction(self):
        model = PerLinkLoss(base=0.0)
        model.block_link(2, 3)
        rng = np.random.default_rng(0)
        assert not model.delivered(2, 3, rng)
        assert model.delivered(3, 2, rng)  # reverse direction unaffected

    def test_base_used_without_override(self):
        model = PerLinkLoss(base=1.0, overrides={(0, 1): 0.0})
        rng = np.random.default_rng(0)
        assert model.delivered(0, 1, rng)
        assert not model.delivered(1, 0, rng)

    def test_invalid_override(self):
        with pytest.raises(ValueError):
            PerLinkLoss(overrides={(0, 1): 2.0})


class TestDistanceLoss:
    def topo(self) -> Topology:
        return Topology([(0.0, 0.0), (0.5, 0.0), (1.0, 0.0)], ranges=1.0)

    def test_zero_distance_floor(self):
        model = DistanceLoss(self.topo(), floor=0.1, ceiling=0.9)
        assert model.loss_probability(0, 1) == pytest.approx(0.5)
        assert model.loss_probability(0, 2) == pytest.approx(0.9)

    def test_beyond_range_is_certain_loss(self):
        topo = Topology([(0.0, 0.0), (5.0, 0.0)], ranges=1.0)
        model = DistanceLoss(topo)
        assert model.loss_probability(0, 1) == 1.0

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            DistanceLoss(self.topo(), floor=0.9, ceiling=0.1)
