"""Tests for the broadcast radio medium."""

from __future__ import annotations

import pytest

from repro.energy.battery import Battery
from repro.energy.costs import EnergyCostModel
from repro.network.links import GlobalLoss
from repro.network.messages import Invitation
from repro.network.node import NetworkNode
from repro.network.radio import Radio
from repro.network.topology import Topology
from repro.simulation.engine import Simulator


def make_radio(
    positions, ranges=2.0, loss=0.0, cost_model=None, battery=None
) -> tuple[Simulator, Radio]:
    simulator = Simulator(seed=3)
    radio = Radio(
        simulator,
        Topology(positions, ranges),
        loss_model=GlobalLoss(loss),
        cost_model=cost_model or EnergyCostModel(),
    )
    radio.populate(battery_capacity=battery)
    return simulator, radio


def received_log(radio: Radio) -> list[tuple[int, str, bool]]:
    log: list[tuple[int, str, bool]] = []
    for node_id, node in radio.nodes.items():
        def handler(message, overheard, nid=node_id):
            log.append((nid, message.kind, overheard))
        node.attach(handler)
    return log


class TestBroadcast:
    def test_reaches_all_in_range(self):
        simulator, radio = make_radio([(0.0, 0.0), (0.1, 0.0), (0.2, 0.0)])
        log = received_log(radio)
        radio.broadcast(Invitation(sender=0, value=1.0, epoch=1))
        simulator.run()
        assert sorted(entry[0] for entry in log) == [1, 2]
        assert all(not overheard for _, _, overheard in log)

    def test_range_limits_delivery(self):
        simulator, radio = make_radio([(0.0, 0.0), (0.5, 0.0), (5.0, 0.0)])
        log = received_log(radio)
        radio.broadcast(Invitation(sender=0, value=1.0, epoch=1))
        simulator.run()
        assert [entry[0] for entry in log] == [1]

    def test_sender_never_hears_itself(self):
        simulator, radio = make_radio([(0.0, 0.0), (0.1, 0.0)])
        log = received_log(radio)
        radio.broadcast(Invitation(sender=0, value=1.0, epoch=1))
        simulator.run()
        assert all(entry[0] != 0 for entry in log)

    def test_dead_sender_sends_nothing(self):
        simulator, radio = make_radio([(0.0, 0.0), (0.1, 0.0)], battery=0.0)
        log = received_log(radio)
        assert radio.broadcast(Invitation(sender=0, value=1.0, epoch=1)) is False
        simulator.run()
        assert log == []

    def test_dead_receiver_gets_nothing(self):
        simulator, radio = make_radio([(0.0, 0.0), (0.1, 0.0)], battery=5.0)
        log = received_log(radio)
        radio.node(1).battery.draw(5.0)
        radio.broadcast(Invitation(sender=0, value=1.0, epoch=1))
        simulator.run()
        assert log == []

    def test_full_loss_drops_everything(self):
        simulator, radio = make_radio([(0.0, 0.0), (0.1, 0.0)], loss=1.0)
        log = received_log(radio)
        radio.broadcast(Invitation(sender=0, value=1.0, epoch=1))
        simulator.run()
        assert log == []
        assert radio.stats.dropped["Invitation"] == 1


class TestUnicast:
    def test_target_vs_overhearers(self):
        simulator, radio = make_radio([(0.0, 0.0), (0.1, 0.0), (0.2, 0.0)])
        log = received_log(radio)
        radio.unicast(Invitation(sender=0, value=1.0, epoch=1), target=1)
        simulator.run()
        entries = {entry[0]: entry[2] for entry in log}
        assert entries[1] is False   # the target
        assert entries[2] is True    # an overhearer

    def test_self_unicast_rejected(self):
        __, radio = make_radio([(0.0, 0.0), (0.1, 0.0)])
        with pytest.raises(ValueError):
            radio.unicast(Invitation(sender=0, value=1.0, epoch=1), target=0)


class TestAccounting:
    def test_transmit_energy_charged_once(self):
        simulator, radio = make_radio(
            [(0.0, 0.0), (0.1, 0.0), (0.2, 0.0)], battery=10.0
        )
        radio.broadcast(Invitation(sender=0, value=1.0, epoch=1))
        simulator.run()
        assert radio.node(0).battery.charge == pytest.approx(9.0)
        assert radio.ledger.node_total(0) == pytest.approx(1.0)

    def test_receive_energy_charged(self):
        simulator, radio = make_radio(
            [(0.0, 0.0), (0.1, 0.0)],
            cost_model=EnergyCostModel(receive=0.25),
            battery=10.0,
        )
        radio.broadcast(Invitation(sender=0, value=1.0, epoch=1))
        simulator.run()
        assert radio.node(1).battery.charge == pytest.approx(9.75)

    def test_stats_counters(self):
        simulator, radio = make_radio([(0.0, 0.0), (0.1, 0.0)])
        radio.broadcast(Invitation(sender=0, value=1.0, epoch=1))
        simulator.run()
        assert radio.stats.sent_by_node(0) == 1
        assert radio.stats.sent_of_kind("Invitation") == 1
        assert radio.stats.delivered[(1, "Invitation")] == 1

    def test_charge_cpu(self):
        __, radio = make_radio([(0.0, 0.0), (0.1, 0.0)], battery=10.0)
        radio.charge_cpu(0)
        assert radio.node(0).battery.charge == pytest.approx(9.9)
        assert radio.ledger.node_breakdown(0)["cpu"] == pytest.approx(0.1)

    def test_node_death_via_transmissions(self):
        simulator, radio = make_radio([(0.0, 0.0), (0.1, 0.0)], battery=2.0)
        for _ in range(3):
            radio.broadcast(Invitation(sender=0, value=1.0, epoch=1))
        simulator.run()
        assert not radio.node(0).alive
        assert radio.stats.sent_by_node(0) == 2  # third send was refused


class TestRegistration:
    def test_duplicate_rejected(self):
        __, radio = make_radio([(0.0, 0.0), (0.1, 0.0)])
        with pytest.raises(ValueError):
            radio.register(NetworkNode(0, Battery(None)))

    def test_unknown_topology_id_rejected(self):
        simulator = Simulator()
        radio = Radio(simulator, Topology([(0.0, 0.0)], 1.0))
        with pytest.raises(ValueError):
            radio.register(NetworkNode(5, Battery(None)))

    def test_unregistered_sender_raises(self):
        simulator = Simulator()
        radio = Radio(simulator, Topology([(0.0, 0.0), (1.0, 1.0)], 2.0))
        with pytest.raises(KeyError):
            radio.broadcast(Invitation(sender=0, value=1.0, epoch=1))
