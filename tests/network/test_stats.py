"""Tests for message accounting."""

from __future__ import annotations

import pytest

from repro.network.messages import DataReport, Heartbeat, Invitation
from repro.network.stats import MessageStats


def invitation(sender: int) -> Invitation:
    return Invitation(sender=sender, value=0.0, epoch=1)


class TestCounters:
    def test_sent_by_node(self):
        stats = MessageStats()
        stats.record_sent(invitation(1))
        stats.record_sent(invitation(1))
        stats.record_sent(invitation(2))
        assert stats.sent_by_node(1) == 2
        assert stats.sent_by_node(2) == 1
        assert stats.total_sent() == 3

    def test_protocol_filter_excludes_data(self):
        stats = MessageStats()
        stats.record_sent(invitation(1))
        stats.record_sent(DataReport(sender=1, query_id=1, origin=1, value=1.0))
        assert stats.protocol_sent_by_node(1) == 1
        assert stats.sent_by_node(1) == 2

    def test_protocol_messages_per_node(self):
        stats = MessageStats()
        for sender in (0, 0, 1):
            stats.record_sent(invitation(sender))
        assert stats.protocol_messages_per_node(3) == pytest.approx(1.0)

    def test_per_node_requires_positive_count(self):
        with pytest.raises(ValueError):
            MessageStats().protocol_messages_per_node(0)

    def test_max_protocol_messages(self):
        stats = MessageStats()
        for _ in range(4):
            stats.record_sent(invitation(7))
        stats.record_sent(Heartbeat(sender=3, target=7, value=0.0))
        assert stats.max_protocol_messages_any_node() == 4

    def test_max_empty(self):
        assert MessageStats().max_protocol_messages_any_node() == 0


class TestWindows:
    def test_window_reports_delta_only(self):
        stats = MessageStats()
        stats.record_sent(invitation(1))
        stats.checkpoint()
        stats.record_sent(invitation(1))
        stats.record_sent(invitation(2))
        window = stats.window()
        assert window[(1, "Invitation")] == 1
        assert window[(2, "Invitation")] == 1

    def test_window_protocol_per_node(self):
        stats = MessageStats()
        stats.record_sent(invitation(1))
        stats.checkpoint()
        stats.record_sent(invitation(1))
        stats.record_sent(DataReport(sender=2, query_id=1, origin=2, value=0.0))
        assert stats.window_protocol_per_node(2) == pytest.approx(0.5)

    def test_clear(self):
        stats = MessageStats()
        stats.record_sent(invitation(1))
        stats.record_delivered(2, invitation(1))
        stats.record_dropped(invitation(1))
        stats.clear()
        assert stats.total_sent() == 0
        assert not stats.delivered
        assert not stats.dropped
