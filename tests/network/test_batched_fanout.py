"""Equivalence of the batched broadcast fan-out with the legacy path.

The radio's batched fan-out samples all of a transmission's loss
outcomes with one blocked RNG draw and schedules one delivery event for
the whole receiver list.  These tests pin the two invariants that make
it safe to ship as the default:

* ``LossModel.loss_vector`` consumes the radio RNG stream draw-for-draw
  identically to per-receiver ``delivered`` calls, for every bundled
  model and the scalar fallback;
* a full §6.1 discovery run (train, idle, elect) produces bit-identical
  traces, message statistics, election outcomes and final RNG state
  whether the radio batches or not — for both cache policies, with and
  without message loss.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.harness import (
    NetworkSetup,
    make_cache_factory,
    random_walk_dataset,
)
from repro.core.runtime import SnapshotRuntime
from repro.network.links import (
    DistanceLoss,
    GlobalLoss,
    LossModel,
    PerLinkLoss,
)
from repro.network.messages import Invitation
from repro.network.node import NetworkNode
from repro.network.radio import Radio
from repro.network.topology import grid_topology, uniform_random_topology
from repro.simulation.engine import Simulator


class _ScalarOnlyLoss(LossModel):
    """A third-party model that only implements the scalar API."""

    def __init__(self, probability: float) -> None:
        self.probability = probability

    def loss_probability(self, sender: int, receiver: int) -> float:
        return self.probability


def _loss_models():
    topology = grid_topology(4, 0.5)
    return [
        GlobalLoss(0.0),
        GlobalLoss(0.37),
        GlobalLoss(1.0),
        PerLinkLoss(0.25, overrides={(0, 1): 0.0, (0, 2): 1.0, (0, 5): 0.6}),
        DistanceLoss(topology, floor=0.05, ceiling=0.95),
        _ScalarOnlyLoss(0.4),
    ]


class TestLossVectorEquivalence:
    @pytest.mark.parametrize("model", _loss_models(), ids=lambda m: type(m).__name__)
    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_matches_scalar_draw_for_draw(self, model, seed):
        receivers = [1, 2, 3, 5, 6, 7, 9, 10]
        scalar_rng = np.random.default_rng(seed)
        vector_rng = np.random.default_rng(seed)
        scalar = [model.delivered(0, r, scalar_rng) for r in receivers]
        vector = model.loss_vector(0, receivers, vector_rng)
        assert vector.dtype == bool
        assert list(vector) == scalar
        # identical stream consumption: later draws agree too
        assert scalar_rng.bit_generator.state == vector_rng.bit_generator.state

    def test_property_random_probabilities(self):
        """loss_vector == [delivered(...)] over random per-link tables."""
        meta_rng = np.random.default_rng(42)
        for _ in range(50):
            n = int(meta_rng.integers(1, 20))
            receivers = list(range(1, n + 1))
            probs = meta_rng.random(n)
            # sprinkle degenerate links, which consume no draws
            probs[meta_rng.random(n) < 0.2] = 0.0
            probs[meta_rng.random(n) < 0.2] = 1.0
            model = PerLinkLoss(
                0.5, overrides={(0, r): float(p) for r, p in zip(receivers, probs)}
            )
            seed = int(meta_rng.integers(0, 2**32))
            a, b = np.random.default_rng(seed), np.random.default_rng(seed)
            scalar = [model.delivered(0, r, a) for r in receivers]
            assert list(model.loss_vector(0, receivers, b)) == scalar
            assert a.bit_generator.state == b.bit_generator.state

    def test_empty_receiver_list(self):
        rng = np.random.default_rng(0)
        state = rng.bit_generator.state
        assert list(GlobalLoss(0.5).loss_vector(0, [], rng)) == []
        assert rng.bit_generator.state == state


def _radio_pair(loss_probability: float, seed: int, batteries=None):
    """Two identically-seeded radios, one batched and one legacy."""
    radios = []
    for batch in (True, False):
        topology = grid_topology(3, 0.5)
        simulator = Simulator(seed=seed)
        radio = Radio(
            simulator,
            topology,
            loss_model=GlobalLoss(loss_probability),
            batch_fanout=batch,
        )
        radio.populate(battery_capacity=batteries)
        radios.append(radio)
    return radios


class TestDeadReceiverAccounting:
    @pytest.mark.parametrize("batch", [True, False])
    def test_dead_receivers_counted_separately(self, batch):
        topology = grid_topology(2, 1.0)  # everyone hears everyone
        simulator = Simulator(seed=1)
        radio = Radio(simulator, topology, batch_fanout=batch)
        radio.populate(battery_capacity=10.0)
        radio.node(3).battery.draw(10.0)
        assert not radio.node(3).alive
        received = []
        radio.node(1).attach(lambda message, overheard: received.append(message))
        radio.broadcast(Invitation(sender=0, value=1.0, epoch=0))
        simulator.run_until(1.0)
        assert len(received) == 1
        assert radio.stats.dropped_dead["Invitation"] == 1
        assert radio.stats.dropped["Invitation"] == 0
        assert radio.stats.delivered[(1, "Invitation")] == 1
        assert (3, "Invitation") not in radio.stats.delivered

    def test_dead_receivers_consume_no_draws(self):
        """Killing a node must not shift loss outcomes for the others."""
        batched, legacy = _radio_pair(0.4, seed=9, batteries=10.0)
        for radio in (batched, legacy):
            radio.node(4).battery.draw(10.0)
            radio.broadcast(Invitation(sender=0, value=1.0, epoch=0))
            radio.simulator.run_until(1.0)
        assert batched.stats.delivered == legacy.stats.delivered
        assert batched.stats.dropped == legacy.stats.dropped
        assert batched.stats.dropped_dead == legacy.stats.dropped_dead
        assert (
            batched._rng.bit_generator.state == legacy._rng.bit_generator.state
        )


def _run_discovery_pair(policy: str, loss: float, seed: int = 2):
    """Run the §6.1 skeleton twice, batched vs legacy, on identical inputs."""
    setup = NetworkSetup(
        n_nodes=30,
        transmission_range=0.6,
        loss_probability=loss,
        cache_policy=policy,
        cache_bytes=1024,
        train_duration=5.0,
        election_time=20.0,
    )
    dataset = random_walk_dataset(setup, n_classes=3, seed=seed, length=40)
    results = []
    for batch in (True, False):
        topology_rng = np.random.default_rng(seed)
        topology = uniform_random_topology(
            setup.n_nodes, setup.transmission_range, topology_rng
        )
        runtime = SnapshotRuntime(
            topology=topology,
            dataset=dataset,
            config=setup.protocol_config(),
            seed=seed,
            loss_model=GlobalLoss(loss),
            cache_factory=make_cache_factory(setup.cache_policy, setup.cache_bytes),
            keep_trace_records=True,
        )
        runtime.radio.batch_fanout = batch
        runtime.train(duration=setup.train_duration)
        runtime.advance_to(setup.election_time)
        view = runtime.run_election()
        results.append((runtime, view))
    return results


class TestGoldenTrace:
    """Batched and legacy fan-out walk bit-identical trajectories."""

    @pytest.mark.parametrize("policy", ["model-aware", "round-robin"])
    @pytest.mark.parametrize("loss", [0.0, 0.3])
    def test_discovery_trajectory_identical(self, policy, loss):
        (batched, batched_view), (legacy, legacy_view) = _run_discovery_pair(
            policy, loss
        )
        # same election outcome
        assert batched_view == legacy_view
        # same message accounting, category by category
        assert batched.radio.stats.sent == legacy.radio.stats.sent
        assert batched.radio.stats.delivered == legacy.radio.stats.delivered
        assert batched.radio.stats.dropped == legacy.radio.stats.dropped
        assert batched.radio.stats.dropped_dead == legacy.radio.stats.dropped_dead
        # same event-by-event trace (times, kinds and payloads)
        assert batched.simulator.trace.records == legacy.simulator.trace.records
        # same final radio RNG state: every Bernoulli draw matched up
        assert (
            batched.radio._rng.bit_generator.state
            == legacy.radio._rng.bit_generator.state
        )
        # and the clocks agree
        assert batched.now == legacy.now
