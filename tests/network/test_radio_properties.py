"""Property-based tests of the radio medium."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.links import GlobalLoss
from repro.network.messages import Invitation
from repro.network.radio import Radio
from repro.network.topology import Topology
from repro.simulation.engine import Simulator


@st.composite
def radio_setups(draw):
    n = draw(st.integers(min_value=2, max_value=15))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    positions = [(float(x), float(y)) for x, y in rng.random((n, 2))]
    reach = draw(st.floats(min_value=0.1, max_value=1.5))
    loss = draw(st.floats(min_value=0.0, max_value=1.0))
    simulator = Simulator(seed=seed)
    radio = Radio(
        simulator, Topology(positions, reach), loss_model=GlobalLoss(loss)
    )
    radio.populate()
    return simulator, radio


@given(radio_setups(), st.integers(min_value=0, max_value=14))
@settings(max_examples=60, deadline=None)
def test_broadcast_delivery_bounded_by_neighborhood(setup, sender_choice):
    simulator, radio = setup
    sender = sender_choice % len(radio.topology)
    received: list[int] = []
    for node_id, node in radio.nodes.items():
        node.attach(lambda msg, overheard, nid=node_id: received.append(nid))
    radio.broadcast(Invitation(sender=sender, value=0.0, epoch=1))
    simulator.run()
    neighborhood = set(radio.topology.out_neighbors(sender))
    assert set(received) <= neighborhood
    assert sender not in received
    # conservation: delivered + dropped == in-range receivers
    delivered = sum(
        count for (__, kind), count in radio.stats.delivered.items()
        if kind == "Invitation"
    )
    dropped = radio.stats.dropped["Invitation"]
    assert delivered + dropped == len(neighborhood)


@given(radio_setups())
@settings(max_examples=40, deadline=None)
def test_energy_conservation(setup):
    """Every transmission charges exactly one transmit cost, and the
    ledger's total equals sent-count times the unit price."""
    simulator, radio = setup
    n = len(radio.topology)
    rng = np.random.default_rng(7)
    for _ in range(10):
        sender = int(rng.integers(0, n))
        radio.broadcast(Invitation(sender=sender, value=0.0, epoch=1))
    simulator.run()
    assert radio.ledger.total("transmit") == radio.stats.total_sent() * 1.0
    total_spent = sum(
        radio.node(node_id).battery.spent for node_id in radio.topology.node_ids
    )
    assert total_spent == radio.ledger.total()
