"""Tests for node placement and connectivity."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.network.topology import Topology, grid_topology, uniform_random_topology


class TestTopology:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Topology([], ranges=1.0)

    def test_rejects_nonpositive_range(self):
        with pytest.raises(ValueError):
            Topology([(0.0, 0.0)], ranges=0.0)

    def test_rejects_mismatched_ranges(self):
        with pytest.raises(ValueError):
            Topology([(0.0, 0.0), (1.0, 1.0)], ranges=[0.5])

    def test_distance(self):
        topo = Topology([(0.0, 0.0), (3.0, 4.0)], ranges=10.0)
        assert topo.distance(0, 1) == pytest.approx(5.0)

    def test_out_neighbors_respect_range(self):
        topo = Topology([(0.0, 0.0), (0.5, 0.0), (2.0, 0.0)], ranges=1.0)
        assert topo.out_neighbors(0) == (1,)
        assert set(topo.out_neighbors(1)) == {0}  # node 2 is 1.5 away
        assert topo.out_neighbors(2) == ()

    def test_asymmetric_links(self):
        """Different per-node ranges make 'can transmit' directional."""
        topo = Topology([(0.0, 0.0), (1.0, 0.0)], ranges=[2.0, 0.5])
        assert topo.can_transmit(0, 1)
        assert not topo.can_transmit(1, 0)
        assert topo.out_neighbors(0) == (1,)
        assert topo.out_neighbors(1) == ()
        assert topo.in_neighbors(1) == (0,)
        assert topo.in_neighbors(0) == ()

    def test_no_self_neighbor(self):
        topo = grid_topology(2, transmission_range=5.0)
        for node in topo.node_ids:
            assert node not in topo.out_neighbors(node)

    def test_full_range_sees_everyone(self):
        rng = np.random.default_rng(1)
        topo = uniform_random_topology(30, math.sqrt(2), rng)
        for node in topo.node_ids:
            assert len(topo.out_neighbors(node)) == 29

    def test_nodes_in_rect(self):
        topo = Topology([(0.1, 0.1), (0.9, 0.9), (0.4, 0.6)], ranges=1.0)
        assert topo.nodes_in_rect(0.0, 0.0, 0.5, 0.7) == [0, 2]

    def test_connectivity_of_grid(self):
        connected = grid_topology(3, transmission_range=0.5)
        assert connected.is_connected()
        sparse = grid_topology(3, transmission_range=0.1)
        assert not sparse.is_connected()

    def test_connectivity_with_subset(self):
        topo = Topology(
            [(0.0, 0.0), (0.3, 0.0), (1.0, 1.0)], ranges=0.5
        )
        assert not topo.is_connected()
        assert topo.is_connected(alive=[0, 1])

    def test_connectivity_uses_either_direction(self):
        """A one-way link still connects the graph for coverage purposes."""
        topo = Topology([(0.0, 0.0), (1.0, 0.0)], ranges=[2.0, 0.1])
        assert topo.is_connected()


class TestGenerators:
    def test_uniform_positions_in_unit_square(self):
        rng = np.random.default_rng(5)
        topo = uniform_random_topology(50, 0.3, rng)
        assert len(topo) == 50
        for node in topo.node_ids:
            x, y = topo.position(node)
            assert 0.0 <= x < 1.0 and 0.0 <= y < 1.0

    def test_uniform_rejects_bad_count(self):
        with pytest.raises(ValueError):
            uniform_random_topology(0, 0.3, np.random.default_rng(0))

    def test_grid_shape(self):
        topo = grid_topology(4, transmission_range=0.3)
        assert len(topo) == 16
        assert topo.position(0) == (0.125, 0.125)
        assert topo.position(15) == (0.875, 0.875)

    def test_grid_rejects_bad_side(self):
        with pytest.raises(ValueError):
            grid_topology(0, transmission_range=0.3)

    def test_determinism(self):
        a = uniform_random_topology(10, 0.5, np.random.default_rng(3))
        b = uniform_random_topology(10, 0.5, np.random.default_rng(3))
        assert [a.position(i) for i in a.node_ids] == [
            b.position(i) for i in b.node_ids
        ]


class TestGridBucketing:
    """The spatial-grid neighbor computation matches brute force exactly."""

    @staticmethod
    def _brute_force_out(positions, ranges):
        out = []
        for i, (xi, yi) in enumerate(positions):
            hearers = []
            for j, (xj, yj) in enumerate(positions):
                if i == j:
                    continue
                dx, dy = xi - xj, yi - yj
                if np.sqrt(dx * dx + dy * dy) <= ranges[i]:
                    hearers.append(j)
            out.append(tuple(hearers))
        return out

    def test_matches_brute_force_mixed_ranges(self):
        rng = np.random.default_rng(5)
        for _ in range(10):
            n = int(rng.integers(2, 80))
            positions = [(float(x), float(y)) for x, y in rng.random((n, 2))]
            ranges = [float(r) for r in rng.uniform(0.05, 0.8, n)]
            topo = Topology(positions, ranges)
            expected = self._brute_force_out(positions, ranges)
            assert [topo.out_neighbors(i) for i in range(n)] == expected

    def test_matches_brute_force_offsets_outside_unit_square(self):
        """Negative and large coordinates hash into the grid correctly."""
        rng = np.random.default_rng(6)
        positions = [
            (float(x), float(y)) for x, y in rng.uniform(-3.0, 7.0, (60, 2))
        ]
        topo = Topology(positions, 1.3)
        expected = self._brute_force_out(positions, [1.3] * 60)
        assert [topo.out_neighbors(i) for i in range(60)] == expected

    def test_in_neighbors_are_reverse_of_out(self):
        rng = np.random.default_rng(7)
        topo = uniform_random_topology(50, 0.4, rng)
        for receiver in topo.node_ids:
            expected = tuple(
                sender
                for sender in topo.node_ids
                if receiver in topo.out_neighbors(sender)
            )
            assert topo.in_neighbors(receiver) == expected

    def test_can_transmit_agrees_with_out_neighbors(self):
        rng = np.random.default_rng(8)
        topo = uniform_random_topology(40, 0.3, rng)
        for sender in topo.node_ids:
            hearers = set(topo.out_neighbors(sender))
            for receiver in topo.node_ids:
                assert topo.can_transmit(sender, receiver) == (receiver in hearers)

    def test_single_node(self):
        topo = Topology([(0.5, 0.5)], ranges=1.0)
        assert topo.out_neighbors(0) == ()
        assert topo.in_neighbors(0) == ()
        assert topo.is_connected()
