"""Tests for the §6.1 class-correlated random-walk generator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.random_walk import (
    RandomWalkConfig,
    class_assignment,
    generate_random_walk,
)


class TestConfigValidation:
    def test_defaults_valid(self):
        RandomWalkConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_nodes": 0},
            {"n_classes": 0},
            {"n_classes": 101},
            {"length": 0},
            {"initial_low": 5.0, "initial_high": 5.0},
            {"step_low": 1.0, "step_high": 1.0},
            {"move_low": -0.1},
            {"move_low": 0.9, "move_high": 0.5},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            RandomWalkConfig(**kwargs)


class TestClassAssignment:
    def test_every_class_populated(self):
        rng = np.random.default_rng(0)
        labels = class_assignment(100, 17, rng)
        assert set(labels) == set(range(17))

    def test_single_class(self):
        labels = class_assignment(10, 1, np.random.default_rng(0))
        assert all(label == 0 for label in labels)

    def test_invalid(self):
        with pytest.raises(ValueError):
            class_assignment(5, 6, np.random.default_rng(0))


class TestGeneratedSeries:
    def test_shape(self):
        config = RandomWalkConfig(n_nodes=20, n_classes=3, length=50)
        data, labels = generate_random_walk(config, np.random.default_rng(1))
        assert data.n_nodes == 20
        assert data.length == 50
        assert len(labels) == 20

    def test_initial_values_in_range(self):
        config = RandomWalkConfig(n_nodes=50, n_classes=2, length=5)
        data, __ = generate_random_walk(config, np.random.default_rng(2))
        first = data.values[:, 0]
        assert (first >= 0.0).all() and (first < 1000.0).all()

    def test_same_class_series_affinely_related(self):
        """The defining property: same-class walks are exact affine
        transforms of one another (x_j = a x_i + b)."""
        config = RandomWalkConfig(n_nodes=30, n_classes=3, length=80)
        data, labels = generate_random_walk(config, np.random.default_rng(3))
        by_class: dict[int, list[int]] = {}
        for node, label in enumerate(labels):
            by_class.setdefault(int(label), []).append(node)
        for members in by_class.values():
            if len(members) < 2:
                continue
            anchor = data.series(members[0])
            if np.ptp(anchor) == 0:
                continue
            for other in members[1:]:
                series = data.series(other)
                fit = np.polyfit(anchor, series, 1)
                residual = series - np.polyval(fit, anchor)
                assert np.abs(residual).max() < 1e-8

    def test_steps_bounded_by_one(self):
        config = RandomWalkConfig(n_nodes=10, n_classes=2, length=60)
        data, __ = generate_random_walk(config, np.random.default_rng(4))
        increments = np.abs(np.diff(data.values, axis=1))
        assert increments.max() <= 1.0 + 1e-12

    def test_k1_moves(self):
        """With move probabilities >= 0.2 a K=1 walk is not constant."""
        config = RandomWalkConfig(n_nodes=5, n_classes=1, length=100)
        data, __ = generate_random_walk(config, np.random.default_rng(5))
        assert np.ptp(data.values, axis=1).min() > 0.0

    @given(st.integers(min_value=1, max_value=10), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_determinism(self, n_classes, seed):
        config = RandomWalkConfig(n_nodes=10, n_classes=n_classes, length=20)
        a, la = generate_random_walk(config, np.random.default_rng(seed))
        b, lb = generate_random_walk(config, np.random.default_rng(seed))
        assert np.array_equal(a.values, b.values)
        assert np.array_equal(la, lb)
