"""Tests for the measurement dataset container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.series import Dataset


class TestDataset:
    def test_shape_accessors(self):
        data = Dataset([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
        assert data.n_nodes == 2
        assert data.length == 3

    def test_rejects_wrong_dims(self):
        with pytest.raises(ValueError):
            Dataset([1.0, 2.0])
        with pytest.raises(ValueError):
            Dataset(np.empty((0, 5)))

    def test_value_floors_time(self):
        data = Dataset([[10.0, 20.0, 30.0]])
        assert data.value(0, 0.0) == 10.0
        assert data.value(0, 1.9) == 20.0
        assert data.value(0, 2.0) == 30.0

    def test_value_clamps_past_end(self):
        """Sensors keep reporting their latest reading after the series ends."""
        data = Dataset([[10.0, 20.0]])
        assert data.value(0, 99.0) == 20.0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Dataset([[1.0]]).value(0, -0.5)

    def test_series_row(self):
        data = Dataset([[1.0, 2.0], [3.0, 4.0]])
        assert list(data.series(1)) == [3.0, 4.0]

    def test_slice_time(self):
        data = Dataset([[1.0, 2.0, 3.0, 4.0]])
        sliced = data.slice_time(1, 3)
        assert list(sliced.series(0)) == [2.0, 3.0]

    def test_slice_time_invalid(self):
        with pytest.raises(ValueError):
            Dataset([[1.0, 2.0]]).slice_time(1, 5)

    def test_statistics(self):
        data = Dataset([[1.0, 3.0], [5.0, 5.0]])
        assert data.mean_of_means() == pytest.approx(3.5)
        assert data.mean_of_variances() == pytest.approx(0.5)
