"""Tests for the synthetic wind-speed generator (the §6.3 substitute)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.weather import WeatherConfig, generate_weather


class TestConfigValidation:
    def test_defaults_valid(self):
        WeatherConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_series": 0},
            {"length": 1},
            {"n_microclimates": 0},
            {"n_microclimates": 200},
            {"regional_phi": 1.0},
            {"gust_phi": -0.1},
            {"regional_weight": 1.5},
            {"target_variance": 0.0},
            {"noise_std": -1.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            WeatherConfig(**kwargs)

    def test_noise_cannot_exceed_variance(self):
        config = WeatherConfig(noise_std=10.0, target_variance=2.8)
        with pytest.raises(ValueError, match="noise"):
            generate_weather(config, np.random.default_rng(0))


class TestCalibration:
    def test_matches_paper_statistics(self):
        """The paper reports average value 5.8 and average variance 2.8."""
        config = WeatherConfig(n_series=100, length=500)
        data, __ = generate_weather(config, np.random.default_rng(11))
        assert data.mean_of_means() == pytest.approx(5.8, abs=0.6)
        assert data.mean_of_variances() == pytest.approx(2.8, rel=0.5)

    def test_non_negative(self):
        config = WeatherConfig(n_series=50, length=300)
        data, __ = generate_weather(config, np.random.default_rng(12))
        assert (data.values >= 0.0).all()

    def test_every_microclimate_populated(self):
        config = WeatherConfig(n_series=40, n_microclimates=8)
        __, labels = generate_weather(config, np.random.default_rng(13))
        assert set(labels) == set(range(8))

    def test_same_microclimate_strongly_correlated(self):
        config = WeatherConfig(n_series=60, length=300)
        data, labels = generate_weather(config, np.random.default_rng(14))
        groups: dict[int, list[int]] = {}
        for node, label in enumerate(labels):
            groups.setdefault(int(label), []).append(node)
        correlations = []
        for members in groups.values():
            for a, b in zip(members, members[1:]):
                r = np.corrcoef(data.series(a), data.series(b))[0, 1]
                correlations.append(r)
        assert np.mean(correlations) > 0.85

    def test_temporal_persistence(self):
        """Wind evolves smoothly: strong lag-1 autocorrelation."""
        config = WeatherConfig(n_series=20, length=400)
        data, __ = generate_weather(config, np.random.default_rng(15))
        autocorrs = []
        for node in range(20):
            series = data.series(node)
            autocorrs.append(np.corrcoef(series[:-1], series[1:])[0, 1])
        assert np.mean(autocorrs) > 0.7

    def test_determinism(self):
        config = WeatherConfig(n_series=10, length=50)
        a, __ = generate_weather(config, np.random.default_rng(9))
        b, __ = generate_weather(config, np.random.default_rng(9))
        assert np.array_equal(a.values, b.values)
