"""Ablation: routing aggregation trees through representatives (§3.1).

"The probability of this happening [a represented node routing for a
query] can be reduced by having the routing protocol favor paths
through representative nodes. ... This will result in further reduction
in the number of sensor nodes used during snapshot queries than those
presented in Table 3."

This ablation re-runs a Table 3 column with and without the preference
and reports the additional savings.
"""

from __future__ import annotations

from conftest import is_paper_scale, run_once

from repro.experiments.reporting import format_rows
from repro.experiments.savings import table3_savings


def test_ablation_representative_routing(benchmark, report):
    n_queries = 200 if is_paper_scale() else 100
    areas = (0.1, 0.5)

    def run():
        vanilla = table3_savings(
            areas=areas, ranges=(0.2,), classes=(1,), n_queries=n_queries
        )
        preferred = table3_savings(
            areas=areas,
            ranges=(0.2,),
            classes=(1,),
            n_queries=n_queries,
            prefer_representative_routing=True,
        )
        return vanilla, preferred

    vanilla, preferred = run_once(benchmark, run)
    rows = []
    for area in areas:
        rows.append(
            (
                f"W^2 = {area:g}",
                f"{vanilla.cell(area, 0.2, 1).percent:.0f}%",
                f"{preferred.cell(area, 0.2, 1).percent:.0f}%",
            )
        )
    report(
        "ablation_routing",
        format_rows(
            ("query area", "vanilla routing", "representative-preferring"),
            rows,
            title="Ablation — §3.1 representative-preferring routing "
            "(K=1, range 0.2, multi-hop)",
        ),
    )
    # the preference must not hurt, and should help somewhere
    gains = [
        preferred.cell(area, 0.2, 1).savings - vanilla.cell(area, 0.2, 1).savings
        for area in areas
    ]
    assert all(gain >= -0.05 for gain in gains)
    assert max(gains) > -0.05
