"""Figure 9: snapshot size vs transmission range, for several K.

Paper series: every line flattens once the range exceeds ~0.7
(= sqrt(0.5), the distance from which a central node hears the entire
unit square); short ranges force extra representatives.
"""

from __future__ import annotations

from conftest import is_paper_scale, repetitions, run_once

from repro.experiments.reporting import format_multi_series
from repro.experiments.sensitivity import (
    DEFAULT_RANGE_SWEEP,
    figure9_vary_transmission_range,
)

QUICK_RANGES = (0.2, 0.5, 0.7, 1.0, 1.4)
QUICK_CLASSES = (1, 10)
PAPER_CLASSES = (1, 5, 10, 20)


def test_fig09_snapshot_size_vs_range(benchmark, report):
    ranges = DEFAULT_RANGE_SWEEP if is_paper_scale() else QUICK_RANGES
    classes = PAPER_CLASSES if is_paper_scale() else QUICK_CLASSES

    results = run_once(
        benchmark,
        lambda: figure9_vary_transmission_range(
            ranges=ranges, classes=classes, repetitions=repetitions()
        ),
    )
    report(
        "fig09_range",
        format_multi_series(
            {f"K={k}": series for k, series in results.items()},
            "transmission range",
            "Figure 9 — snapshot size n1 vs transmission range",
        ),
    )
    for series in results.values():
        # flat past 0.7: the 0.7 and max-range points are close
        knee = series.point_at(0.7).mean
        full = series.points[-1].mean
        assert abs(knee - full) <= max(4.0, 0.5 * knee)
        # short range needs at least as many representatives
        assert series.points[0].mean >= full - 2.0
