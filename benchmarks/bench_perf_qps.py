"""Serving throughput: epoch-keyed result cache on vs off.

Unlike the paper-facing benches this measures the *serving layer*: a
:class:`~repro.serving.QueryFrontEnd` fed a concurrent workload of
snapshot aggregates drawn from a fixed template pool, over a stable
interval (no re-election, so the structure version never moves and the
cache stays warm after the first pass over the templates).

Two identically-seeded deployments serve the identical workload:

* **cache off** — every request plans, floods/shares a tree per batch
  and executes;
* **cache on** — repeats of a template are replayed from the
  :class:`~repro.serving.EpochResultCache` under the pinned structure
  version.

Answers must agree template-by-template (the differential discipline of
``tests/serving/test_differential.py``, re-asserted on the timed run),
so the QPS ratio is pure serving-path speedup.  The acceptance floor is
>= 3x sustained QPS with the cache on.  Results land in
``results/BENCH_qps.{txt,json}``.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import is_paper_scale, run_once

from repro.core.config import ProtocolConfig
from repro.core.runtime import SnapshotRuntime
from repro.data.random_walk import RandomWalkConfig, generate_random_walk
from repro.network.topology import uniform_random_topology
from repro.query.ast import Aggregate, Query
from repro.query.spatial import random_square
from repro.serving import QueryFrontEnd

#: Acceptance floor: sustained QPS with the cache on must be a clear
#: multiple of cache-off QPS on a stable (no re-election) interval.
#: Measured ~5-8x at quick scale; 3x leaves CI headroom.
REQUIRED_SPEEDUP = 3.0

#: Distinct query templates in the pool; repeats beyond the pool size
#: are what the cache converts into replays.
TEMPLATES = 16

#: Concurrent client threads hammering the front door.
CLIENTS = 8


def _templates(rng: np.random.Generator) -> list[Query]:
    """Snapshot AVG queries over random quarter-area squares."""
    return [
        Query(
            region=random_square(0.25, rng),
            aggregate=Aggregate.AVG,
            use_snapshot=True,
        )
        for _ in range(TEMPLATES)
    ]


def _served_runtime(n_nodes: int, seed: int = 23) -> SnapshotRuntime:
    rng = np.random.default_rng(seed)
    dataset, _ = generate_random_walk(
        RandomWalkConfig(n_nodes=n_nodes, n_classes=2, length=120), rng
    )
    topology = uniform_random_topology(n_nodes, 2.0, rng)
    runtime = SnapshotRuntime(
        topology, dataset, ProtocolConfig(threshold=1.0), seed=seed
    )
    runtime.train(duration=10)
    runtime.run_election()
    return runtime


def serve_workload(
    n_nodes: int, n_queries: int, cache: bool, seed: int = 23
) -> dict:
    """QPS of ``n_queries`` requests over the template pool.

    Both variants are built from the same seeds, so the deployments,
    the elected snapshot and the workload are identical; only the cache
    differs.  Returns the per-template answers for the differential
    check alongside the measured rate.
    """
    runtime = _served_runtime(n_nodes, seed=seed)
    templates = _templates(np.random.default_rng(seed + 1))
    sink = min(runtime.alive_ids())
    requests = [templates[i % TEMPLATES] for i in range(n_queries)]
    with QueryFrontEnd(runtime, cache=cache, charge_energy=False) as frontend:
        start = time.perf_counter()
        results = frontend.run_workload(
            [(query, sink) for query in requests], clients=CLIENTS
        )
        elapsed = time.perf_counter() - start
        stats = frontend.stats()
    answers = {}
    for query, served in zip(requests, results):
        key = templates.index(query)
        value = served.result.aggregate_value
        # a stable interval serves one answer per template, cached or not
        assert answers.setdefault(key, value) == value
    return {
        "qps": len(results) / elapsed,
        "elapsed_secs": elapsed,
        "served": len(results),
        "cache_hits": stats["cache_hits"],
        "trees_built": stats["trees_built"],
        "p50_ms": stats["p50_seconds"] * 1e3,
        "p99_ms": stats["p99_seconds"] * 1e3,
        "answers": answers,
    }


def test_bench_serving_qps(benchmark, report):
    n_nodes = 100 if is_paper_scale() else 40
    n_queries = 2000 if is_paper_scale() else 400
    trials = 3

    def run() -> dict:
        best = {"cache_on": None, "cache_off": None}
        for _ in range(trials):
            # interleaved best-of-N so machine-load drift hits both alike
            for mode, flag in (("cache_off", False), ("cache_on", True)):
                cell = serve_workload(n_nodes, n_queries, cache=flag)
                if best[mode] is None or cell["qps"] > best[mode]["qps"]:
                    best[mode] = cell
        # differential: cached answers equal cache-off answers per template
        assert best["cache_on"]["answers"] == best["cache_off"]["answers"]
        return {
            "cache_on": best["cache_on"],
            "cache_off": best["cache_off"],
            "speedup": best["cache_on"]["qps"] / best["cache_off"]["qps"],
        }

    results = run_once(benchmark, run)

    on, off = results["cache_on"], results["cache_off"]
    lines = [
        "BENCH qps — serving front-end, epoch cache on vs off",
        f"  {n_queries} queries, {TEMPLATES} templates, {CLIENTS} clients, "
        f"N={n_nodes}, stable interval, best of {trials}",
        f"    cache off  {off['qps']:8.0f} qps   p50 {off['p50_ms']:6.2f} ms  "
        f"p99 {off['p99_ms']:6.2f} ms   trees={off['trees_built']}",
        f"    cache on   {on['qps']:8.0f} qps   p50 {on['p50_ms']:6.2f} ms  "
        f"p99 {on['p99_ms']:6.2f} ms   trees={on['trees_built']}  "
        f"hits={on['cache_hits']}",
        f"    speedup {results['speedup']:.2f}x (floor {REQUIRED_SPEEDUP:.1f}x)",
    ]
    report(
        "BENCH_qps",
        "\n".join(lines),
        data={
            "n_nodes": n_nodes,
            "n_queries": n_queries,
            "templates": TEMPLATES,
            "clients": CLIENTS,
            "best_of": trials,
            "required_speedup": REQUIRED_SPEEDUP,
            "speedup": round(results["speedup"], 2),
            "cache_on": {
                "qps": round(on["qps"], 1),
                "p50_ms": round(on["p50_ms"], 3),
                "p99_ms": round(on["p99_ms"], 3),
                "cache_hits": on["cache_hits"],
                "trees_built": on["trees_built"],
            },
            "cache_off": {
                "qps": round(off["qps"], 1),
                "p50_ms": round(off["p50_ms"], 3),
                "p99_ms": round(off["p99_ms"], 3),
                "trees_built": off["trees_built"],
            },
        },
    )

    assert results["speedup"] >= REQUIRED_SPEEDUP
