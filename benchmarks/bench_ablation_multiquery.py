"""Ablation: shared multi-resolution snapshots vs per-query elections (§3.1).

"Given queries Q1, Q2, ... with error thresholds T1 <= T2 <= ... we can
obtain a single set of representatives for the most tight threshold T1
and use them for answering all other queries."

This ablation builds a multi-resolution family and compares, for a
coarse query, (a) answering from the reusable fine snapshot (no new
election) vs (b) electing a dedicated snapshot at the query's own
threshold: the dedicated snapshot involves fewer responders, but costs
a full election round (~4 messages per node); the shared snapshot is
free.
"""

from __future__ import annotations

from conftest import run_once

from repro.core.multi_resolution import MultiResolutionSnapshot
from repro.experiments.harness import NetworkSetup, build_runtime, random_walk_dataset
from repro.experiments.reporting import format_rows


def test_ablation_multiquery_snapshot_reuse(benchmark, report):
    setup = NetworkSetup(n_nodes=100)
    thresholds = (1.0, 10.0, 100.0)

    def run():
        dataset = random_walk_dataset(setup, 10, seed=77)
        runtime = build_runtime(setup, dataset, seed=77)
        runtime.train(duration=setup.train_duration)
        runtime.advance_to(setup.election_time)
        multi = MultiResolutionSnapshot(runtime, thresholds)
        runtime.stats.checkpoint()
        views = multi.build()
        election_msgs = runtime.stats.window_protocol_per_node(setup.n_nodes)
        sizes = {t: view.size for t, view in views.items()}
        reuse = multi.view_for_threshold(50.0)
        return sizes, reuse.size if reuse else None, election_msgs

    sizes, reused_size, election_msgs = run_once(benchmark, run)
    rows = [(f"T={t:g}", size) for t, size in sorted(sizes.items())]
    rows.append(("reused for T=50 query", reused_size))
    rows.append(("election msgs/node (3 rounds)", f"{election_msgs:.1f}"))
    report(
        "ablation_multiquery",
        format_rows(
            ("snapshot", "n1"),
            rows,
            title="Ablation — §3.1 multi-resolution snapshots and reuse rule",
        ),
    )
    ordered = [sizes[t] for t in thresholds]
    assert ordered[0] >= ordered[1] >= ordered[2]
    # the T=50 query reuses the T=10 snapshot (coarsest usable)
    assert reused_size == sizes[10.0]
    # each of the three election rounds respects the Table 2 bound
    assert election_msgs <= 3 * 5
