"""Sharded multi-process engine vs the single-process simulator.

Measures the wall time of a dense synchronized workload — measurement
rounds (every node broadcasting per tick, all neighbors snooping) plus
a full global election — on the single-process
:class:`~repro.core.runtime.SnapshotRuntime` and on the 4-shard
process-mode :class:`~repro.simulation.sharded.ShardedRuntime`.  Both
engines run identical per-entity-disciplined deployments, so their
trajectories are bit-equivalent (pinned by
``tests/simulation/test_shard_equivalence.py``) and a message-count
checksum re-asserts it on every timed run: whatever the ratio, the
sharded engine is computing *the same simulation*.

The ≥1.5x speedup floor at N=2000 is asserted whenever the machine
exposes at least ``N_SHARDS`` CPUs; on narrower hosts (CI smoke
containers are often single-core) real parallel speedup is physically
impossible, so the floor relaxes to the overhead bound
``MAX_SLOWDOWN`` — the conservative window protocol plus pipe RPC must
never cost more than ~2x — and the saved JSON records
``floor_enforced: false`` alongside the measured ratio.  Quick scale
measures N=600; paper scale measures N=2000 (the floor cell) and adds
a sharded-only completion run at N=20000.  Results land in
``results/BENCH_shard.{txt,json}``.
"""

from __future__ import annotations

import math
import os
import time

import numpy as np

from conftest import is_paper_scale, run_once

from repro.core.config import ProtocolConfig
from repro.core.runtime import SnapshotRuntime
from repro.data.random_walk import RandomWalkConfig, generate_random_walk
from repro.experiments.harness import make_cache_factory
from repro.network.topology import uniform_random_topology
from repro.simulation.sharded import ShardedRuntime

#: Acceptance floor at N=2000 when >= N_SHARDS CPUs are available.
REQUIRED_SPEEDUP = 1.5

#: Overhead bound asserted unconditionally: even serialized onto one
#: core, window sync + handoff RPC must not halve throughput.
MAX_SLOWDOWN = 2.0

N_SHARDS = 4
CACHE_BYTES = 512
WARM_TICKS = 4.0
TIMED_TICKS = 4.0
DEGREE = 12.0
SEED = 11


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _inputs(n_nodes: int):
    rng = np.random.default_rng(SEED)
    dataset, _ = generate_random_walk(
        RandomWalkConfig(
            n_nodes=n_nodes,
            n_classes=1,
            length=int(WARM_TICKS + TIMED_TICKS) + 200,
        ),
        rng,
    )
    radius = math.sqrt(DEGREE / (math.pi * n_nodes))
    topology = uniform_random_topology(
        n_nodes, radius, np.random.default_rng(SEED + 1)
    )
    # Per-entity RNG streams — the discipline the sharded engine
    # requires; the single-process side uses it too so the match-up is
    # engine vs engine, not discipline vs discipline.
    config = ProtocolConfig(threshold=1.0, rng_discipline="per-entity")
    return topology, dataset, config


def shard_workload(
    n_nodes: int, sharded: bool, elect: bool = True
) -> tuple[float, int]:
    """Wall time of the timed rounds (+ election) at ``n_nodes``.

    Engine construction, worker forking and the warmup ticks are
    untimed; the timed window is steady-state broadcast traffic plus
    the synchronized election phases.  Returns ``(seconds,
    total_messages)`` — the checksum both engines must agree on.
    """
    topology, dataset, config = _inputs(n_nodes)
    kwargs = dict(
        seed=SEED,
        cache_factory=make_cache_factory("model-aware", CACHE_BYTES),
        metrics_enabled=False,
    )
    if not sharded:
        runtime = SnapshotRuntime(topology, dataset, config, **kwargs)
        runtime.train(duration=WARM_TICKS)
        start = time.perf_counter()
        runtime.train(duration=TIMED_TICKS)
        if elect:
            runtime.run_election()
        return time.perf_counter() - start, sum(runtime.stats.sent.values())
    with ShardedRuntime(
        topology, dataset, config, n_shards=N_SHARDS, mode="process", **kwargs
    ) as runtime:
        runtime.train(duration=WARM_TICKS)
        start = time.perf_counter()
        runtime.train(duration=TIMED_TICKS)
        if elect:
            runtime.run_election()
        return time.perf_counter() - start, runtime.message_total()


def test_bench_sharded_engine(benchmark, report):
    n_main = 2000 if is_paper_scale() else 600
    trials = 3 if is_paper_scale() else 2
    cores = _cores()
    floor_enforced = cores >= N_SHARDS

    def run() -> dict:
        # Interleave the engines best-of-N so machine-load drift hits
        # both alike (the bench_perf_rounds overhead discipline).
        best = {"single": float("inf"), "sharded": float("inf")}
        checks = {}
        for _ in range(trials):
            for mode, flag in (("single", False), ("sharded", True)):
                secs, check = shard_workload(n_main, sharded=flag)
                best[mode] = min(best[mode], secs)
                checks[mode] = check
        assert checks["single"] == checks["sharded"]
        cell = {
            "n_nodes": n_main,
            "single_secs": best["single"],
            "sharded_secs": best["sharded"],
            "speedup": best["single"] / best["sharded"],
            "messages": checks["sharded"],
        }
        completion = None
        if is_paper_scale():
            # Scale headroom: a 4-shard fleet at N=20000 must complete
            # the same warm + timed broadcast schedule (no election:
            # the cell witnesses scale, the floor cell wins the race).
            n_large = 20000
            secs, check = shard_workload(n_large, sharded=True, elect=False)
            completion = {
                "n_nodes": n_large,
                "timed_secs": secs,
                "messages": check,
            }
        return {"cell": cell, "completion": completion}

    results = run_once(benchmark, run)
    cell = results["cell"]
    completion = results["completion"]

    lines = [
        f"BENCH shard — {N_SHARDS}-shard process engine vs single-process",
        f"  broadcast rounds + election ({TIMED_TICKS:.0f} ticks timed, "
        f"{WARM_TICKS:.0f} warm, degree~{DEGREE:.0f}, best of {trials}, "
        f"{cores} cpu(s), floor {'on' if floor_enforced else 'off'})",
        f"    N={cell['n_nodes']:<6} single {cell['single_secs']:7.3f}s   "
        f"sharded {cell['sharded_secs']:7.3f}s   "
        f"speedup {cell['speedup']:5.2f}x   msgs={cell['messages']}",
    ]
    if completion is not None:
        lines.append(
            f"    N={completion['n_nodes']} (sharded completion) "
            f"{completion['timed_secs']:7.3f}s timed, "
            f"msgs={completion['messages']}"
        )
    report(
        "BENCH_shard",
        "\n".join(lines),
        data={
            "n_shards": N_SHARDS,
            "cpus": cores,
            "warm_ticks": WARM_TICKS,
            "timed_ticks": TIMED_TICKS,
            "degree": DEGREE,
            "best_of": trials,
            "required_speedup": REQUIRED_SPEEDUP,
            "floor_enforced": floor_enforced,
            "cell": {
                "n_nodes": cell["n_nodes"],
                "single_secs": round(cell["single_secs"], 4),
                "sharded_secs": round(cell["sharded_secs"], 4),
                "speedup": round(cell["speedup"], 2),
                "messages": cell["messages"],
            },
            "completion": completion
            and {
                "n_nodes": completion["n_nodes"],
                "timed_secs": round(completion["timed_secs"], 3),
                "messages": completion["messages"],
            },
        },
    )

    if floor_enforced and is_paper_scale():
        assert cell["speedup"] >= REQUIRED_SPEEDUP
    else:
        assert cell["speedup"] >= 1.0 / MAX_SLOWDOWN
