"""Ablation: representative energy management strategies (§5.1).

The paper's Figure 10 run uses "a simple maintenance protocol that
replaced representative nodes as they died out" and notes two refined
options: the energy-aware hand-off (a representative below a battery
threshold notifies its members to re-elect) and LEACH-style randomized
rotation of the representative role.  This ablation compares the
area-under-coverage of the snapshot run under all three strategies.
"""

from __future__ import annotations

from conftest import is_paper_scale, run_once

from repro.experiments.harness import NetworkSetup
from repro.experiments.reporting import format_rows
from repro.experiments.savings import figure10_lifetime


def base_setup(**overrides) -> NetworkSetup:
    values = dict(
        n_nodes=100,
        transmission_range=0.7,
        battery_capacity=500.0,
        heartbeat_period=100.0,
        energy_resign_fraction=0.0,
        rotation_probability=0.0,
    )
    values.update(overrides)
    return NetworkSetup(**values)


def test_ablation_energy_strategies(benchmark, report):
    n_queries = 8_000 if is_paper_scale() else 4_000
    strategies = {
        "replace-on-death": base_setup(),
        "energy hand-off": base_setup(energy_resign_fraction=0.1),
        "hand-off + rotation": base_setup(
            energy_resign_fraction=0.1, rotation_probability=0.05
        ),
    }

    def run() -> dict[str, float]:
        areas = {}
        for label, setup in strategies.items():
            result = figure10_lifetime(
                n_queries=n_queries,
                battery_capacity=500.0,
                setup=setup,
                seed=42,
            )
            areas[label] = result.snapshot.area
        return areas

    areas = run_once(benchmark, run)
    rows = [(label, f"{auc:.0f}") for label, auc in areas.items()]
    report(
        "ablation_rotation",
        format_rows(
            ("strategy", "snapshot coverage AUC"),
            rows,
            title="Ablation — §5.1 representative energy-management strategies",
        ),
    )
    # the hand-off must beat bare replace-on-death (the paper's remedy)
    assert areas["energy hand-off"] > areas["replace-on-death"]
