"""Cache hot-path microbenchmark: ``observe`` throughput (ops/sec).

Unlike the figure benchmarks, this one measures the *implementation*,
not the paper: the per-observation cost of the §4 decision procedure at
the paper's default 2,048-byte (256-pair) budget.  Version 2 of the
saved record (``results/BENCH_cache.json``) keeps the original
flat ``ops_per_sec`` keys — now measuring the struct-of-arrays default
engine — and adds two sections:

* ``matrix`` — neighbors ∈ {4, 8, 16, 32} × engine (scalar object
  graph vs SoA block) for the model-aware policy, with round-robin as
  the per-neighbor-count control;
* ``fleet`` — the cross-cache numpy engine driving 512 caches in
  lock-step through ``observe_batch``, the configuration that closes
  the throughput gap against the single-cache interpreter loop.

Scales: ``quick`` streams 20k observations per cell, ``paper`` 100k.
"""

from __future__ import annotations

import random
import time

import numpy as np

from conftest import is_paper_scale, run_once

from repro.models.cache_manager import ModelAwareCache
from repro.models.round_robin import RoundRobinCache
from repro.models.soa import ModelAwareCacheFleet

#: The paper's default budget: 2,048 bytes = 256 pairs (§6.1).
CACHE_BYTES = 2048
#: Distinct neighbors feeding the cache (typical §6 node degree).
NEIGHBORS = 8
#: Sweep for the matrix section: sparse grid up to dense §6.2 degrees.
NEIGHBOR_SWEEP = (4, 8, 16, 32)
WARMUP_OBSERVATIONS = 2_000
#: Lanes in the fleet cell — enough caches that per-step numpy kernel
#: overhead amortizes (a real Fig-8 sweep runs hundreds of nodes).
FLEET_LANES = 512
FLEET_REPS = 3


def correlated_stream(
    length: int, neighbors: int = NEIGHBORS, seed: int = 42
) -> list[tuple[int, float, float]]:
    """A seeded stream of ``(neighbor, x_i, x_j)`` correlated random walks."""
    rng = random.Random(seed)
    own = 0.0
    walks = {j: rng.uniform(-5.0, 5.0) for j in range(neighbors)}
    stream = []
    for _ in range(length):
        own += rng.gauss(0.0, 1.0)
        j = rng.randrange(neighbors)
        walks[j] += rng.gauss(0.0, 1.0)
        stream.append((j, own, 0.8 * own + walks[j]))
    return stream


def throughput(policy, stream) -> float:
    """Feed ``stream`` after a warm-up fill; observations per second."""
    for obs in stream[:WARMUP_OBSERVATIONS]:
        policy.observe(*obs)
    measured = stream[WARMUP_OBSERVATIONS:]
    start = time.perf_counter()
    for obs in measured:
        policy.observe(*obs)
    elapsed = time.perf_counter() - start
    return len(measured) / elapsed


def fleet_throughput(steps: int) -> float:
    """Aggregate obs/sec of ``observe_batch`` across FLEET_LANES caches.

    Warm-up fills every lane past its capacity, then the best of
    FLEET_REPS timed passes is reported — the fleet is steady-state by
    construction, so repetition only removes scheduler noise.
    """
    warmup = 50
    streams = [
        correlated_stream(steps + warmup, seed=1_000 + lane)
        for lane in range(FLEET_LANES)
    ]
    js = np.array([[s[t][0] for s in streams] for t in range(steps + warmup)])
    xs = np.array([[s[t][1] for s in streams] for t in range(steps + warmup)])
    ys = np.array([[s[t][2] for s in streams] for t in range(steps + warmup)])
    fleet = ModelAwareCacheFleet(FLEET_LANES, CACHE_BYTES, max_lines=NEIGHBORS)
    for t in range(warmup):
        fleet.observe_batch(js[t], xs[t], ys[t])
    best = 0.0
    for _ in range(FLEET_REPS):
        start = time.perf_counter()
        for t in range(warmup, steps + warmup):
            fleet.observe_batch(js[t], xs[t], ys[t])
        elapsed = time.perf_counter() - start
        best = max(best, FLEET_LANES * steps / elapsed)
    return best


def test_bench_cache_observe_throughput(benchmark, report):
    length = 100_000 if is_paper_scale() else 20_000
    fleet_steps = (100_000 if is_paper_scale() else 20_000) // 50

    def run() -> dict:
        stream = correlated_stream(WARMUP_OBSERVATIONS + length)
        headline = {
            # historical keys: the default (now SoA) engine at §6.1 size
            "model_aware_2048": throughput(ModelAwareCache(CACHE_BYTES), stream),
            "round_robin_2048": throughput(RoundRobinCache(CACHE_BYTES), stream),
        }
        matrix = {}
        for neighbors in NEIGHBOR_SWEEP:
            cell_stream = correlated_stream(
                WARMUP_OBSERVATIONS + length, neighbors=neighbors
            )
            matrix[neighbors] = {
                "model_aware_scalar": throughput(
                    ModelAwareCache(CACHE_BYTES, vectorized=False), cell_stream
                ),
                "model_aware_vectorized": throughput(
                    ModelAwareCache(CACHE_BYTES, vectorized=True), cell_stream
                ),
                "round_robin": throughput(
                    RoundRobinCache(CACHE_BYTES), cell_stream
                ),
            }
        return headline, matrix, fleet_throughput(fleet_steps)

    headline, matrix, fleet_rate = run_once(benchmark, run)

    lines = [
        f"BENCH cache — observe throughput at {CACHE_BYTES} bytes "
        f"({NEIGHBORS} neighbors, {length} observations)",
        *(
            f"  {policy:<20} {rate:>12,.0f} ops/sec"
            for policy, rate in sorted(headline.items())
        ),
        "  engine matrix (ops/sec by neighbor count)",
        f"    {'neighbors':<10} {'ma-scalar':>12} {'ma-vector':>12} "
        f"{'round-robin':>12}",
        *(
            f"    {neighbors:<10} {cell['model_aware_scalar']:>12,.0f} "
            f"{cell['model_aware_vectorized']:>12,.0f} "
            f"{cell['round_robin']:>12,.0f}"
            for neighbors, cell in sorted(matrix.items())
        ),
        f"  fleet ({FLEET_LANES} caches, observe_batch, best of "
        f"{FLEET_REPS}) {fleet_rate:>12,.0f} obs/sec",
    ]
    report(
        "BENCH_cache",
        "\n".join(lines),
        data={
            "version": 2,
            "cache_bytes": CACHE_BYTES,
            "neighbors": NEIGHBORS,
            "observations": length,
            "ops_per_sec": {k: round(v, 1) for k, v in headline.items()},
            "matrix": {
                str(neighbors): {k: round(v, 1) for k, v in cell.items()}
                for neighbors, cell in matrix.items()
            },
            "fleet": {
                "lanes": FLEET_LANES,
                "steps": fleet_steps,
                "reps": FLEET_REPS,
                "obs_per_sec": round(fleet_rate, 1),
            },
        },
    )

    # The O(1) decision procedure comfortably clears this floor even on
    # slow CI hardware; the pre-rewrite batch refitting managed ~20k.
    assert headline["model_aware_2048"] > 40_000
    # The SoA block must not lose to the scalar object graph anywhere.
    for neighbors, cell in matrix.items():
        assert (
            cell["model_aware_vectorized"] > 0.9 * cell["model_aware_scalar"]
        ), f"vectorized engine regressed at {neighbors} neighbors"
    # The fleet engine is the 3x-the-baseline contract: the pinned
    # pre-SoA BENCH_cache.json measured ~110k ops/sec at this cell.
    assert fleet_rate > 330_000
