"""Cache hot-path microbenchmark: ``observe`` throughput (ops/sec).

Unlike the figure benchmarks, this one measures the *implementation*,
not the paper: the per-observation cost of the §4 decision procedure at
the paper's default 2,048-byte (256-pair) budget.  The incremental
sufficient-statistics rewrite makes each decision O(1) in the line
length, so throughput here should be roughly flat in cache size; the
saved JSON (``results/BENCH_cache.json``) gives future PRs a
machine-readable baseline to track the perf trajectory.

Scales: ``quick`` streams 20k observations per policy, ``paper`` 100k.
"""

from __future__ import annotations

import random
import time

from conftest import is_paper_scale, run_once

from repro.models.cache_manager import ModelAwareCache
from repro.models.round_robin import RoundRobinCache

#: The paper's default budget: 2,048 bytes = 256 pairs (§6.1).
CACHE_BYTES = 2048
#: Distinct neighbors feeding the cache (typical §6 node degree).
NEIGHBORS = 8
WARMUP_OBSERVATIONS = 2_000


def correlated_stream(
    length: int, neighbors: int = NEIGHBORS, seed: int = 42
) -> list[tuple[int, float, float]]:
    """A seeded stream of ``(neighbor, x_i, x_j)`` correlated random walks."""
    rng = random.Random(seed)
    own = 0.0
    walks = {j: rng.uniform(-5.0, 5.0) for j in range(neighbors)}
    stream = []
    for _ in range(length):
        own += rng.gauss(0.0, 1.0)
        j = rng.randrange(neighbors)
        walks[j] += rng.gauss(0.0, 1.0)
        stream.append((j, own, 0.8 * own + walks[j]))
    return stream


def throughput(policy, stream) -> float:
    """Feed ``stream`` after a warm-up fill; observations per second."""
    for obs in stream[:WARMUP_OBSERVATIONS]:
        policy.observe(*obs)
    measured = stream[WARMUP_OBSERVATIONS:]
    start = time.perf_counter()
    for obs in measured:
        policy.observe(*obs)
    elapsed = time.perf_counter() - start
    return len(measured) / elapsed


def test_bench_cache_observe_throughput(benchmark, report):
    length = 100_000 if is_paper_scale() else 20_000
    stream = correlated_stream(WARMUP_OBSERVATIONS + length)

    def run() -> dict[str, float]:
        return {
            "model_aware_2048": throughput(ModelAwareCache(CACHE_BYTES), stream),
            "round_robin_2048": throughput(RoundRobinCache(CACHE_BYTES), stream),
        }

    ops = run_once(benchmark, run)

    lines = [
        f"BENCH cache — observe throughput at {CACHE_BYTES} bytes "
        f"({NEIGHBORS} neighbors, {length} observations)",
        *(
            f"  {policy:<20} {rate:>12,.0f} ops/sec"
            for policy, rate in sorted(ops.items())
        ),
    ]
    report(
        "BENCH_cache",
        "\n".join(lines),
        data={
            "cache_bytes": CACHE_BYTES,
            "neighbors": NEIGHBORS,
            "observations": length,
            "ops_per_sec": {k: round(v, 1) for k, v in ops.items()},
        },
    )

    # The O(1) decision procedure comfortably clears this floor even on
    # slow CI hardware; the pre-rewrite batch refitting managed ~20k.
    assert ops["model_aware_2048"] > 40_000
