"""Figure 10: network coverage over time — regular vs snapshot queries.

Paper setup: K=T=1, range 0.7, batteries worth 500 transmissions, cache
maintenance charged at a tenth of a transmission, a stream of random
spatial queries of area 0.1.  Regular execution holds perfect coverage
until mid-run, then collapses as the uniformly drained network dies en
masse; snapshot execution declines gradually (representatives drain
faster but hand off / are replaced) and accumulates a larger area under
the coverage curve.
"""

from __future__ import annotations

from conftest import is_paper_scale, run_once

from repro.experiments.reporting import format_rows
from repro.experiments.savings import figure10_lifetime


def test_fig10_lifetime_coverage(benchmark, report):
    n_queries = 10_000 if is_paper_scale() else 6_000

    result = run_once(benchmark, lambda: figure10_lifetime(n_queries=n_queries))

    bucket = max(1, n_queries // 10)
    rows = []
    for index in range(0, n_queries, bucket):
        rows.append(
            (
                f"{index}-{index + bucket}",
                f"{sum(result.regular.samples[index:index + bucket]) / bucket:.2f}",
                f"{sum(result.snapshot.samples[index:index + bucket]) / bucket:.2f}",
            )
        )
    rows.append(("AUC", f"{result.regular.area:.0f}", f"{result.snapshot.area:.0f}"))
    report(
        "fig10_lifetime",
        format_rows(
            ("queries", "regular coverage", "snapshot coverage"),
            rows,
            title="Figure 10 — network coverage over time (K=T=1, range 0.7)",
        ),
    )
    # who wins: the area under the snapshot curve is larger
    assert result.area_gain > 1.0
    # regular holds early then collapses
    early = result.regular.samples[: n_queries // 8]
    assert sum(early) / len(early) > 0.9
    late = result.regular.samples[-n_queries // 8 :]
    late_snapshot = result.snapshot.samples[-n_queries // 8 :]
    assert sum(late) / len(late) < 0.5
