"""Figure 12: average sse of the snapshot's estimates vs the threshold T.

Paper series: the realized approximation error of the representatives'
estimates stays well below the threshold used for the election, at
every T.
"""

from __future__ import annotations

from conftest import is_paper_scale, repetitions, run_once

from repro.experiments.reporting import format_series
from repro.experiments.weather_experiments import (
    DEFAULT_THRESHOLD_SWEEP,
    figure12_estimation_error,
)

QUICK_SWEEP = (0.1, 0.5, 1.0, 5.0, 10.0)


def test_fig12_estimate_error_vs_threshold(benchmark, report):
    thresholds = DEFAULT_THRESHOLD_SWEEP if is_paper_scale() else QUICK_SWEEP

    series = run_once(
        benchmark,
        lambda: figure12_estimation_error(
            thresholds=thresholds, repetitions=repetitions()
        ),
    )
    report(
        "fig12_sse",
        format_series(
            series, "Figure 12 — average sse of snapshot estimates vs threshold T"
        ),
    )
    # the paper's claim: realized error is well below the threshold
    for point in series.points:
        assert point.mean < point.x
