"""Figure 6: snapshot size vs number of correlation classes K.

Paper series (N=100, T=1, 2 KB cache, full range, no loss): K=1 elects
a single representative; past K≈15 the size plateaus around 17–25
instead of tracking K.
"""

from __future__ import annotations

from conftest import is_paper_scale, repetitions, run_once

from repro.experiments.reporting import format_series
from repro.experiments.sensitivity import DEFAULT_CLASS_SWEEP, figure6_vary_classes

QUICK_SWEEP = (1, 5, 10, 20, 50, 100)


def test_fig06_snapshot_size_vs_classes(benchmark, report):
    classes = DEFAULT_CLASS_SWEEP if is_paper_scale() else QUICK_SWEEP

    series = run_once(
        benchmark,
        lambda: figure6_vary_classes(classes=classes, repetitions=repetitions()),
    )
    report(
        "fig06_classes",
        format_series(series, "Figure 6 — snapshot size n1 vs number of classes K"),
    )
    # the paper's two anchor claims
    assert series.point_at(1).mean <= 2.0
    assert series.point_at(100).mean < 50.0
