"""Figure 15: messages per node during snapshot maintenance.

Paper series (same long run as Figure 14): the average number of
protocol messages per node per maintenance update is about 4.5 at
transmission range 0.7 and about 2 at range 0.2 — more nodes answer an
invitation at the longer range — both well below the §5.1 worst case of
six messages.
"""

from __future__ import annotations

from conftest import is_paper_scale, run_once

from repro.experiments.reporting import format_rows
from repro.experiments.weather_experiments import figure15_messages_per_update


def test_fig15_messages_per_update(benchmark, report):
    length = 5_000 if is_paper_scale() else 1_500

    runs = run_once(
        benchmark,
        lambda: figure15_messages_per_update(series_length=length),
    )
    run02, run07 = runs[0.2], runs[0.7]
    rows = [
        (index + 1, f"{m02:.2f}", f"{m07:.2f}")
        for index, (m02, m07) in enumerate(
            zip(run02.messages_per_node, run07.messages_per_node)
        )
    ]
    rows.append(("mean", f"{run02.mean_messages:.2f}", f"{run07.mean_messages:.2f}"))
    report(
        "fig15_messages",
        format_rows(
            ("update", "msgs/node (range 0.2)", "msgs/node (range 0.7)"),
            rows,
            title="Figure 15 — protocol messages per node per maintenance update",
        ),
    )
    # the §5.1 bound and the range ordering
    assert 0.0 < run02.mean_messages <= 6.0
    assert 0.0 < run07.mean_messages <= 6.0
    assert run07.mean_messages > run02.mean_messages
