"""Figure 13: spurious representatives under message loss.

Paper series (weather data, T=0.1, transmission range 0.2): spurious
representatives — nodes still believing they represent someone who has
elected a different representative, the product of lost Rule-2 recalls
— are few at every loss rate and actually *decrease* at extreme loss,
because most invitations are lost and Rule-2 rarely executes at all.
"""

from __future__ import annotations

from conftest import is_paper_scale, repetitions, run_once

from repro.experiments.reporting import format_multi_series
from repro.experiments.weather_experiments import figure13_spurious_representatives

QUICK_SWEEP = (0.0, 0.1, 0.3, 0.5, 0.7, 0.95)
PAPER_SWEEP = (0.0, 0.1, 0.2, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95)


def test_fig13_spurious_representatives(benchmark, report):
    losses = PAPER_SWEEP if is_paper_scale() else QUICK_SWEEP

    results = run_once(
        benchmark,
        lambda: figure13_spurious_representatives(
            losses=losses, repetitions=repetitions()
        ),
    )
    report(
        "fig13_spurious",
        format_multi_series(
            results,
            "P_loss",
            "Figure 13 — spurious vs total representatives under message loss "
            "(T=0.1, range 0.2)",
        ),
    )
    spurious = results["spurious"]
    total = results["total"]
    assert spurious.point_at(0.0).mean == 0.0
    for s_point, t_point in zip(spurious.points, total.points):
        assert s_point.mean <= max(5.0, 0.2 * t_point.mean)
    # extreme loss: fewer Rule-2 recalls to lose
    assert spurious.point_at(0.95).mean <= max(
        point.mean for point in spurious.points
    )
