"""Figure 8: snapshot size vs cache budget — model-aware vs round-robin.

Paper series (K=10): indistinguishable below ~500 bytes, the
model-aware manager roughly halves the snapshot around 1,100 bytes, and
the curves reconverge above ~2.5 KB.
"""

from __future__ import annotations

from conftest import is_paper_scale, repetitions, run_once

from repro.experiments.reporting import format_multi_series
from repro.experiments.sensitivity import DEFAULT_CACHE_SWEEP, figure8_vary_cache_size

QUICK_SWEEP = (200, 400, 1100, 2048, 4096)


def test_fig08_cache_policies(benchmark, report):
    sizes = DEFAULT_CACHE_SWEEP if is_paper_scale() else QUICK_SWEEP

    results = run_once(
        benchmark,
        lambda: figure8_vary_cache_size(cache_sizes=sizes, repetitions=repetitions()),
    )
    report(
        "fig08_cache_size",
        format_multi_series(
            results,
            "cache bytes",
            "Figure 8 — snapshot size n1 vs cache budget (K=10)",
        ),
    )
    aware = results["model-aware"]
    robin = results["round-robin"]
    # the mid-cache gap is the paper's headline
    assert aware.point_at(1100).mean < robin.point_at(1100).mean
