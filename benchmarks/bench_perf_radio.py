"""Radio fan-out microbenchmark: batched vs legacy delivery (wall time).

Like ``bench_perf_cache``, this measures the *implementation*, not the
paper: the cost of the broadcast hot path that every §6 experiment
funnels through.  Two quantities are reported and saved to
``results/BENCH_radio.json``:

* **broadcast throughput** — broadcasts/sec through a full-range radio
  with Bernoulli loss, where the legacy path schedules one event and
  one RNG draw per receiver and the batched path schedules a single
  event per transmission with one blocked draw;
* **discovery wall time** — the §6.1 representative-election phase
  (the event-layer-dominated part of discovery) at N ∈ {100, 400}
  (``paper`` scale adds N=1000), timed under both fan-out paths on
  identical seeds.  The trajectories are bit-identical (pinned by
  ``tests/network/test_batched_fanout.py``), so the ratio is pure
  implementation speedup.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import is_paper_scale, run_once

from repro.core.runtime import SnapshotRuntime
from repro.experiments.harness import (
    FULL_RANGE,
    NetworkSetup,
    make_cache_factory,
    random_walk_dataset,
)
from repro.network.links import GlobalLoss
from repro.network.messages import Invitation
from repro.network.radio import Radio
from repro.network.topology import uniform_random_topology
from repro.simulation.engine import Simulator

#: Acceptance floor: the batched fan-out must keep a clear multiple
#: over legacy for the election phase at N=400, full range.  The floor
#: dropped from 3.0x when the event queue moved to the transient slab:
#: both paths got faster in absolute terms, but legacy — which pushes
#: one event per receiver instead of one per transmission — pockets
#: proportionally more of the cheaper push/pop, narrowing the ratio
#: (3.3x → ~2.9x) while every absolute wall time improved ~20-30%.
REQUIRED_DISCOVERY_SPEEDUP = 2.5

#: Acceptance ceiling: a disabled metrics registry may slow the
#: broadcast hot path by at most this fraction over the registry-free
#: baseline (the gated fast path is two attribute loads and a branch).
MAX_DISABLED_OVERHEAD = 0.03


def broadcast_throughput(
    n_nodes: int, n_broadcasts: int, batch: bool, seed: int = 17
) -> float:
    """Broadcasts/sec through a lossy full-range radio (includes delivery)."""
    topology = uniform_random_topology(n_nodes, FULL_RANGE, np.random.default_rng(seed))
    simulator = Simulator(seed=seed)
    radio = Radio(simulator, topology, loss_model=GlobalLoss(0.3), batch_fanout=batch)
    radio.populate()
    message = Invitation(sender=0, value=1.0, epoch=0)
    start = time.perf_counter()
    for _ in range(n_broadcasts):
        radio.broadcast(message)
        simulator.run()
    elapsed = time.perf_counter() - start
    return n_broadcasts / elapsed


def discovery_wall_time(n_nodes: int, batch: bool, seed: int = 1) -> tuple[float, int]:
    """Wall time of the §6.1 election at ``n_nodes``; returns ``(secs, n1)``.

    Training is deliberately short — the measured phase is the election,
    whose cost is dominated by the event/radio layer the batching
    targets; model quality does not change what is being timed.
    """
    setup = NetworkSetup(
        n_nodes=n_nodes,
        transmission_range=FULL_RANGE,
        train_duration=2.0,
        election_time=5.0,
    )
    dataset = random_walk_dataset(setup, n_classes=1, seed=seed, length=20)
    topology = uniform_random_topology(
        n_nodes, FULL_RANGE, np.random.default_rng(seed)
    )
    runtime = SnapshotRuntime(
        topology=topology,
        dataset=dataset,
        config=setup.protocol_config(),
        seed=seed,
        cache_factory=make_cache_factory("model-aware", setup.cache_bytes),
    )
    runtime.radio.batch_fanout = batch
    runtime.train(duration=setup.train_duration)
    runtime.advance_to(setup.election_time)
    start = time.perf_counter()
    view = runtime.run_election()
    return time.perf_counter() - start, view.size


def test_bench_radio_fanout(benchmark, report):
    sizes = [100, 400, 1000] if is_paper_scale() else [100, 400]
    n_broadcasts = 2_000 if is_paper_scale() else 500

    def run() -> dict:
        throughput = {
            "batched": broadcast_throughput(400, n_broadcasts, batch=True),
            "legacy": broadcast_throughput(400, n_broadcasts, batch=False),
        }
        discovery = {}
        for n in sizes:
            batched_secs, batched_size = discovery_wall_time(n, batch=True)
            legacy_secs, legacy_size = discovery_wall_time(n, batch=False)
            assert batched_size == legacy_size  # identical trajectory
            discovery[n] = {
                "batched_secs": batched_secs,
                "legacy_secs": legacy_secs,
                "speedup": legacy_secs / batched_secs,
                "snapshot_size": batched_size,
            }
        return {"throughput": throughput, "discovery": discovery}

    results = run_once(benchmark, run)

    throughput = results["throughput"]
    lines = [
        "BENCH radio — batched vs legacy broadcast fan-out",
        f"  broadcast throughput (N=400, P_loss=0.3, {n_broadcasts} broadcasts)",
        f"    batched  {throughput['batched']:>10,.0f} broadcasts/sec",
        f"    legacy   {throughput['legacy']:>10,.0f} broadcasts/sec",
        f"    speedup  {throughput['batched'] / throughput['legacy']:>10.2f}x",
        "  §6.1 discovery (election wall time, full range)",
    ]
    for n, cell in results["discovery"].items():
        lines.append(
            f"    N={n:<5} batched {cell['batched_secs']:7.3f}s   "
            f"legacy {cell['legacy_secs']:7.3f}s   "
            f"speedup {cell['speedup']:5.2f}x   n1={cell['snapshot_size']}"
        )
    report(
        "BENCH_radio",
        "\n".join(lines),
        data={
            "n_broadcasts": n_broadcasts,
            "broadcasts_per_sec": {
                k: round(v, 1) for k, v in throughput.items()
            },
            "discovery": {
                str(n): {
                    "batched_secs": round(cell["batched_secs"], 4),
                    "legacy_secs": round(cell["legacy_secs"], 4),
                    "speedup": round(cell["speedup"], 2),
                    "snapshot_size": cell["snapshot_size"],
                }
                for n, cell in results["discovery"].items()
            },
        },
    )

    assert results["discovery"][400]["speedup"] >= REQUIRED_DISCOVERY_SPEEDUP


# ----------------------------------------------------------------------
# observability overhead
# ----------------------------------------------------------------------


class _NullHistogram:
    """Stand-in for the fan-out histogram: the registry-free baseline."""

    def observe(self, value, key=()):  # pragma: no cover - trivially empty
        pass


def _overhead_radio(n_nodes: int, seed: int, mode: str) -> tuple[Radio, Simulator]:
    """A lossy full-range radio in one of three observability modes.

    ``enabled``/``disabled`` use the normal construction path (the
    registry gate open or closed); ``baseline`` reproduces the
    pre-registry hot path — plain-counter accounting and no fan-out
    histogram call doing anything.
    """
    from repro.energy.accounting import EnergyLedger
    from repro.network.stats import MessageStats

    topology = uniform_random_topology(
        n_nodes, FULL_RANGE, np.random.default_rng(seed)
    )
    simulator = Simulator(seed=seed, metrics_enabled=(mode == "enabled"))
    if mode == "baseline":
        radio = Radio(
            simulator,
            topology,
            loss_model=GlobalLoss(0.3),
            stats=MessageStats(),
            ledger=EnergyLedger(),
        )
        radio._fanout = _NullHistogram()
    else:
        radio = Radio(simulator, topology, loss_model=GlobalLoss(0.3))
    radio.populate()
    return radio, simulator


def test_bench_registry_overhead(benchmark, report):
    """Disabled-registry overhead on the broadcast hot path (< 3%).

    The three modes run interleaved (baseline, disabled, enabled per
    trial) and each takes its best-of-N time, so drift in machine load
    hits all of them alike.
    """
    n_nodes = 200
    n_broadcasts = 2_000 if is_paper_scale() else 600
    trials = 5
    message = Invitation(sender=0, value=1.0, epoch=0)

    def run() -> dict:
        radios = {
            mode: _overhead_radio(n_nodes, seed=17, mode=mode)
            for mode in ("baseline", "disabled", "enabled")
        }
        best = {mode: float("inf") for mode in radios}
        for _ in range(trials):
            for mode, (radio, simulator) in radios.items():
                start = time.perf_counter()
                for _ in range(n_broadcasts):
                    radio.broadcast(message)
                    simulator.run()
                best[mode] = min(best[mode], time.perf_counter() - start)
        return {
            "secs": best,
            "disabled_overhead": best["disabled"] / best["baseline"] - 1.0,
            "enabled_overhead": best["enabled"] / best["baseline"] - 1.0,
        }

    results = run_once(benchmark, run)

    secs = results["secs"]
    lines = [
        "BENCH registry overhead — broadcast hot path "
        f"(N={n_nodes}, P_loss=0.3, {n_broadcasts} broadcasts, best of {trials})",
        f"  baseline (no registry)  {secs['baseline']:8.4f}s",
        f"  registry disabled       {secs['disabled']:8.4f}s  "
        f"({results['disabled_overhead']:+.2%})",
        f"  registry enabled        {secs['enabled']:8.4f}s  "
        f"({results['enabled_overhead']:+.2%})",
    ]
    report(
        "BENCH_registry_overhead",
        "\n".join(lines),
        data={
            "n_nodes": n_nodes,
            "n_broadcasts": n_broadcasts,
            "best_of": trials,
            "secs": {k: round(v, 5) for k, v in secs.items()},
            "disabled_overhead": round(results["disabled_overhead"], 4),
            "enabled_overhead": round(results["enabled_overhead"], 4),
        },
    )

    assert results["disabled_overhead"] < MAX_DISABLED_OVERHEAD
