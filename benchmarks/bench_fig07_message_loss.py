"""Figure 7: snapshot size vs message-loss probability (K=1).

Paper series: one representative without loss, ~4 at 30% loss,
effectiveness retained up to ~80% loss, then a sharp rise toward N as
almost nothing is delivered.
"""

from __future__ import annotations

from conftest import is_paper_scale, repetitions, run_once

from repro.experiments.reporting import format_series
from repro.experiments.sensitivity import DEFAULT_LOSS_SWEEP, figure7_vary_message_loss

QUICK_SWEEP = (0.0, 0.1, 0.3, 0.5, 0.8, 0.95)


def test_fig07_snapshot_size_vs_loss(benchmark, report):
    losses = DEFAULT_LOSS_SWEEP if is_paper_scale() else QUICK_SWEEP

    series = run_once(
        benchmark,
        lambda: figure7_vary_message_loss(losses=losses, repetitions=repetitions()),
    )
    report(
        "fig07_message_loss",
        format_series(series, "Figure 7 — snapshot size n1 vs message loss P_loss (K=1)"),
    )
    means = series.means
    assert means[0] <= 2.0
    assert all(a <= b + 2.0 for a, b in zip(means, means[1:]))  # ~monotone
    assert series.point_at(0.95).mean > 80.0
