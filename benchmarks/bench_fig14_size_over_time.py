"""Figure 14: snapshot size over time under periodic maintenance.

Paper setup (weather series of 5,000 values, snapshot updated every 100
time units, 5% snooping on the query traffic between updates): the
snapshot size fluctuates mildly around a per-range mean — about 70
representatives at transmission range 0.2 and about 25 at range 0.7.
"""

from __future__ import annotations

from conftest import is_paper_scale, run_once

from repro.experiments.reporting import format_rows
from repro.experiments.weather_experiments import figure14_snapshot_size_over_time


def test_fig14_snapshot_size_over_time(benchmark, report):
    length = 5_000 if is_paper_scale() else 1_500

    runs = run_once(
        benchmark,
        lambda: figure14_snapshot_size_over_time(series_length=length),
    )
    rows = []
    run02, run07 = runs[0.2], runs[0.7]
    for time, s02, s07 in zip(run02.times, run02.snapshot_sizes, run07.snapshot_sizes):
        rows.append((f"{time:.0f}", s02, s07))
    rows.append(("mean", f"{run02.mean_size:.1f}", f"{run07.mean_size:.1f}"))
    report(
        "fig14_size_over_time",
        format_rows(
            ("time", "n1 (range 0.2)", "n1 (range 0.7)"),
            rows,
            title="Figure 14 — snapshot size over maintenance updates",
        ),
    )
    # short range sustains more representatives than long range
    assert run02.mean_size > run07.mean_size
    # fluctuation, not divergence: sizes stay within the network
    for run in runs.values():
        assert all(0 < size <= 100 for size in run.snapshot_sizes)
