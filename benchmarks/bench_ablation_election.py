"""Ablation: the §5 longest-list selection rule vs random selection.

The paper's local policy — "have a node choose as its representative
the node that can represent the larger number of nodes in its
neighborhood" — concentrates members on few representatives.  This
ablation replaces it with a uniformly random choice among the offers
and measures the resulting snapshot size: without consolidation the
snapshot needs noticeably more representatives for the same threshold.
"""

from __future__ import annotations

import statistics

from conftest import repetitions, run_once

from repro.core.runtime import SnapshotRuntime
from repro.experiments.harness import (
    NetworkSetup,
    build_runtime,
    random_walk_dataset,
)
from repro.experiments.reporting import format_rows


def snapshot_size(selection_policy: str, n_classes: int, seed: int) -> int:
    setup = NetworkSetup(n_nodes=100)
    dataset = random_walk_dataset(setup, n_classes, seed)
    config = setup.protocol_config(selection_policy=selection_policy)
    runtime = build_runtime(setup, dataset, seed, config=config)
    runtime.train(duration=setup.train_duration)
    runtime.advance_to(setup.election_time)
    return runtime.run_election().size


def test_ablation_selection_policy(benchmark, report):
    reps = repetitions()

    def run() -> dict[str, dict[int, float]]:
        results: dict[str, dict[int, float]] = {}
        for policy in ("longest-list", "random"):
            results[policy] = {}
            for n_classes in (5, 10):
                sizes = [
                    snapshot_size(policy, n_classes, 7_000 + n_classes * 100 + i)
                    for i in range(reps)
                ]
                results[policy][n_classes] = statistics.fmean(sizes)
        return results

    results = run_once(benchmark, run)
    rows = [
        (k, f"{results['longest-list'][k]:.1f}", f"{results['random'][k]:.1f}")
        for k in (5, 10)
    ]
    report(
        "ablation_election",
        format_rows(
            ("K", "longest-list n1", "random n1"),
            rows,
            title="Ablation — §5 selection rule vs random representative choice",
        ),
    )
    for n_classes in (5, 10):
        assert (
            results["longest-list"][n_classes] <= results["random"][n_classes]
        ), "the longest-list rule should never need more representatives"
