"""Batched maintenance rounds: fleet sweep vs scalar per-delivery path.

Like ``bench_perf_cache`` and ``bench_perf_radio``, this measures the
*implementation*, not the paper: the wall time of measurement rounds —
every node broadcasting its reading once per tick while all neighbors
snoop the sample into their model-aware caches — under the two
observation paths:

* **scalar** (``batched_rounds=False``) — the golden reference: one
  ``cache.observe`` decision inside each delivery event;
* **batched** (``batched_rounds=True``) — the
  ``BatchedObservationRouter`` collects the burst and applies it in
  per-lane-order-preserving waves through
  ``ModelAwareCacheFleet.observe_lanes``.

The trajectories are bit-identical (pinned by
``tests/persist/test_batched_equivalence.py``), so the ratio is pure
implementation speedup; a pair-count/event-count checksum re-asserts it
here on every timed run.  Quick scale measures N=400 (the asserted
floor); paper scale adds N=2000 and a batched completion run at
N=5000.  Results land in ``results/BENCH_rounds.{txt,json}``.
"""

from __future__ import annotations

import math
import time

import numpy as np

from conftest import is_paper_scale, run_once

from repro.core.config import ProtocolConfig
from repro.core.runtime import SnapshotRuntime
from repro.data.random_walk import RandomWalkConfig, generate_random_walk
from repro.experiments.harness import make_cache_factory
from repro.network.topology import uniform_random_topology

#: Acceptance floor: the batched sweep must keep a clear multiple over
#: the scalar path for measurement rounds at N=400.  The win grows with
#: N (~2x at N=2000): the per-burst waves get wider while the scalar
#: path's per-observation Python cost is flat.
REQUIRED_SPEEDUP_400 = 1.5

#: Cache budget (64 pairs): small enough that every cache saturates
#: within the warmup window, so the timed rounds exercise the full
#: §4 decision procedure, not the trivial fill-up phase.
CACHE_BYTES = 512

#: Warmup / timed window, in measurement ticks (one broadcast per node
#: per tick).
WARM_TICKS = 8.0
TIMED_TICKS = 4.0

#: Expected node degree of the benchmark topologies: the transmission
#: radius is set so each node overhears ~12 neighbors per tick, the
#: connectivity regime of the paper's §6.1 multi-hop deployments.
DEGREE = 12.0


def _build(n_nodes: int, batched: bool, seed: int = 11) -> SnapshotRuntime:
    rng = np.random.default_rng(seed)
    dataset, _ = generate_random_walk(
        RandomWalkConfig(
            n_nodes=n_nodes,
            n_classes=1,
            length=int(WARM_TICKS + TIMED_TICKS) + 4,
        ),
        rng,
    )
    radius = math.sqrt(DEGREE / (math.pi * n_nodes))
    topology = uniform_random_topology(
        n_nodes, radius, np.random.default_rng(seed + 1)
    )
    return SnapshotRuntime(
        topology,
        dataset,
        ProtocolConfig(threshold=1.0),
        seed=seed,
        cache_factory=make_cache_factory("model-aware", CACHE_BYTES),
        metrics_enabled=False,
        batched_rounds=batched,
    )


def _checksum(runtime: SnapshotRuntime) -> tuple[int, int]:
    """A cheap trajectory witness: total cached pairs + event count."""
    return (
        sum(node.store.policy.total_pairs for node in runtime.nodes.values()),
        runtime.simulator.events_processed,
    )


def measurement_rounds(n_nodes: int, batched: bool) -> tuple[float, tuple[int, int]]:
    """Wall time of ``TIMED_TICKS`` measurement rounds at ``n_nodes``.

    The warmup window saturates every cache (64 pairs vs ~12 neighbors
    x 8 ticks) and is untimed; the timed window is pure steady-state
    observation traffic.
    """
    runtime = _build(n_nodes, batched)
    runtime.train(duration=WARM_TICKS)
    start = time.perf_counter()
    runtime.train(duration=TIMED_TICKS)
    elapsed = time.perf_counter() - start
    return elapsed, _checksum(runtime)


def test_bench_observation_rounds(benchmark, report):
    sizes = [400, 2000] if is_paper_scale() else [400]
    trials = 3

    def run() -> dict:
        rounds = {}
        for n in sizes:
            # Interleave the modes best-of-N so machine-load drift hits
            # both alike (the bench_perf_radio overhead discipline).
            best = {"scalar": float("inf"), "batched": float("inf")}
            checks = {}
            for _ in range(trials):
                for mode, flag in (("scalar", False), ("batched", True)):
                    secs, check = measurement_rounds(n, batched=flag)
                    best[mode] = min(best[mode], secs)
                    checks[mode] = check
            # Bit-identical trajectories leave an identical witness.
            assert checks["scalar"] == checks["batched"]
            rounds[n] = {
                "scalar_secs": best["scalar"],
                "batched_secs": best["batched"],
                "speedup": best["scalar"] / best["batched"],
                "total_pairs": checks["batched"][0],
                "events": checks["batched"][1],
            }
        completion = None
        if is_paper_scale():
            # Scale headroom: one batched deployment at N=5000 must
            # complete the same warm + timed schedule.
            n_large = 5000
            secs, check = measurement_rounds(n_large, batched=True)
            completion = {
                "n_nodes": n_large,
                "timed_secs": secs,
                "total_pairs": check[0],
                "events": check[1],
            }
        return {"rounds": rounds, "completion": completion}

    results = run_once(benchmark, run)

    lines = [
        "BENCH rounds — batched fleet sweep vs scalar per-delivery observe",
        f"  measurement rounds ({TIMED_TICKS:.0f} ticks timed, "
        f"{WARM_TICKS:.0f} warm, degree~{DEGREE:.0f}, "
        f"{CACHE_BYTES}B caches, best of {trials})",
    ]
    for n, cell in results["rounds"].items():
        lines.append(
            f"    N={n:<5} scalar {cell['scalar_secs']:7.3f}s   "
            f"batched {cell['batched_secs']:7.3f}s   "
            f"speedup {cell['speedup']:5.2f}x   "
            f"pairs={cell['total_pairs']}"
        )
    completion = results["completion"]
    if completion is not None:
        lines.append(
            f"    N={completion['n_nodes']} (batched completion) "
            f"{completion['timed_secs']:7.3f}s timed, "
            f"{completion['events']} events"
        )
    report(
        "BENCH_rounds",
        "\n".join(lines),
        data={
            "cache_bytes": CACHE_BYTES,
            "warm_ticks": WARM_TICKS,
            "timed_ticks": TIMED_TICKS,
            "degree": DEGREE,
            "best_of": trials,
            "rounds": {
                str(n): {
                    "scalar_secs": round(cell["scalar_secs"], 4),
                    "batched_secs": round(cell["batched_secs"], 4),
                    "speedup": round(cell["speedup"], 2),
                    "total_pairs": cell["total_pairs"],
                    "events": cell["events"],
                }
                for n, cell in results["rounds"].items()
            },
            "completion": completion
            and {
                "n_nodes": completion["n_nodes"],
                "timed_secs": round(completion["timed_secs"], 3),
                "total_pairs": completion["total_pairs"],
                "events": completion["events"],
            },
        },
    )

    assert results["rounds"][400]["speedup"] >= REQUIRED_SPEEDUP_400
