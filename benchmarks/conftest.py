"""Benchmark configuration.

Every benchmark regenerates one table or figure of the paper and prints
(and saves under ``benchmarks/results/``) the same rows/series the
paper reports.  Two scales are supported via the ``REPRO_BENCH_SCALE``
environment variable:

* ``quick`` (default) — trimmed sweeps, 2 repetitions; the whole suite
  finishes in roughly a quarter of an hour;
* ``paper`` — the full sweeps and ten repetitions of §6.

Benchmarks execute exactly once (``pedantic(rounds=1, iterations=1)``):
the measured quantity is the experiment's wall time, and the scientific
output is the printed/saved table.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: quick | paper
SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")


def repetitions() -> int:
    """Experiment repetitions at the current scale (paper: 10)."""
    return 10 if SCALE == "paper" else 2


def is_paper_scale() -> bool:
    """Whether the full §6 sweeps are requested."""
    return SCALE == "paper"


@pytest.fixture
def report():
    """Print a result block and persist it under ``benchmarks/results/``.

    ``save(name, text)`` writes ``results/<name>.txt``.  Pass ``data``
    (any JSON-serializable object) to additionally emit
    ``results/<name>.json`` — a machine-readable record (e.g. ops/sec
    of the perf microbenchmarks) that future PRs can diff to track the
    performance trajectory.
    """

    def save(name: str, text: str, data=None) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        if data is not None:
            (RESULTS_DIR / f"{name}.json").write_text(
                json.dumps(data, indent=2, sort_keys=True) + "\n"
            )
        print("\n" + text)

    return save


def pytest_collection_modifyitems(items):
    """Every benchmark carries the ``bench`` marker, so tier-1's
    ``-m 'not bench'`` deselection covers this directory even when it is
    collected alongside the tests."""
    for item in items:
        item.add_marker(pytest.mark.bench)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
