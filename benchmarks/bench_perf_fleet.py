"""Fleet slicing overhead: sliced operation vs one uninterrupted advance.

The fleet layer (``repro.fleet``) drives a deployment in bounded
sim-time slices so it can be checkpointed, observed and reconfigured
while running.  ``tests/fleet`` proves slicing is *trajectory*-neutral;
this benchmark pins down that it is (nearly) *wall-clock*-neutral too:
the same maintenance horizon driven through ``FleetRunner.run`` —
slice bookkeeping and SLO evaluation on, checkpointing/streaming/probes
off, so the timed cell isolates the slicing machinery itself — must
stay within ``MAX_OVERHEAD`` of a single ``advance_to`` at N=400.

A trajectory witness (event count, cached pairs, final clock) re-asserts
equivalence on every timed run.  Results land in
``results/BENCH_fleet.{txt,json}``.
"""

from __future__ import annotations

import math
import time

import numpy as np

from conftest import is_paper_scale, run_once

from repro.core.config import ProtocolConfig
from repro.core.runtime import SnapshotRuntime
from repro.data.random_walk import RandomWalkConfig, generate_random_walk
from repro.experiments.harness import make_cache_factory
from repro.fleet import FleetRunner, FleetState
from repro.network.topology import uniform_random_topology

#: Acceptance ceiling: sliced wall time over uninterrupted wall time.
MAX_OVERHEAD = 1.10

#: Maintenance horizon (sim time) and how finely the fleet slices it.
PERIOD = 10.0
HORIZON = 8 * PERIOD
N_SLICES = 16

DEGREE = 12.0
CACHE_BYTES = 2048


def _build(n_nodes: int, seed: int = 11) -> SnapshotRuntime:
    rng = np.random.default_rng(seed)
    dataset, _ = generate_random_walk(
        RandomWalkConfig(n_nodes=n_nodes, n_classes=4, length=64), rng
    )
    radius = math.sqrt(DEGREE / (math.pi * n_nodes))
    topology = uniform_random_topology(
        n_nodes, radius, np.random.default_rng(seed + 1)
    )
    runtime = SnapshotRuntime(
        topology,
        dataset,
        ProtocolConfig(threshold=1.0, heartbeat_period=PERIOD, rule4_retry=0.1),
        seed=seed,
        cache_factory=make_cache_factory("model-aware", CACHE_BYTES),
        metrics_enabled=False,
    )
    runtime.train(duration=8.0)
    runtime.run_election()
    runtime.start_maintenance()
    return runtime


def _checksum(runtime: SnapshotRuntime) -> tuple:
    return (
        runtime.simulator.events_processed,
        sum(node.store.policy.total_pairs for node in runtime.nodes.values()),
        runtime.simulator.now,
        runtime.current_epoch,
    )


def _uninterrupted(n_nodes: int) -> tuple[float, tuple]:
    runtime = _build(n_nodes)
    end = runtime.now + HORIZON
    start = time.perf_counter()
    runtime.advance_to(end)
    return time.perf_counter() - start, _checksum(runtime)


def _sliced(n_nodes: int) -> tuple[float, tuple]:
    runtime = _build(n_nodes)
    state = FleetState(runtime, probe_area=None)  # probes would add queries
    runner = FleetRunner(state, HORIZON / N_SLICES)
    start = time.perf_counter()
    runner.run(N_SLICES)
    return time.perf_counter() - start, _checksum(runtime)


def test_bench_fleet_slicing_overhead(benchmark, report):
    sizes = [400, 2000] if is_paper_scale() else [400]
    trials = 5

    def run() -> dict:
        cells = {}
        for n in sizes:
            # Interleave best-of-N so machine-load drift hits both
            # modes alike (the bench_perf_rounds discipline).
            best = {"single": float("inf"), "sliced": float("inf")}
            checks = {}
            for _ in range(trials):
                for mode, fn in (("single", _uninterrupted), ("sliced", _sliced)):
                    secs, check = fn(n)
                    best[mode] = min(best[mode], secs)
                    checks[mode] = check
            # Slicing is trajectory-neutral; the witness must agree.
            assert checks["single"] == checks["sliced"]
            cells[n] = {
                "single_secs": best["single"],
                "sliced_secs": best["sliced"],
                "overhead": best["sliced"] / best["single"],
                "events": checks["sliced"][0],
                "slices": N_SLICES,
            }
        return {"cells": cells}

    results = run_once(benchmark, run)

    lines = [
        "BENCH fleet — sliced operation vs one uninterrupted advance",
        f"  {HORIZON:.0f} time units of maintenance in {N_SLICES} slices "
        f"(degree~{DEGREE:.0f}, best of {trials})",
    ]
    for n, cell in results["cells"].items():
        lines.append(
            f"    N={n:<5} single {cell['single_secs']:7.3f}s   "
            f"sliced {cell['sliced_secs']:7.3f}s   "
            f"overhead {cell['overhead']:5.3f}x   "
            f"events={cell['events']}"
        )
    report("BENCH_fleet", "\n".join(lines), data=results)

    overhead_400 = results["cells"][400]["overhead"]
    assert overhead_400 <= MAX_OVERHEAD, (
        f"fleet slicing cost {overhead_400:.3f}x the uninterrupted run at "
        f"N=400 (ceiling {MAX_OVERHEAD:.2f}x)"
    )
