"""Figure 11: snapshot size vs error threshold T on weather data.

Paper series (100 wind-speed series, sse metric, full range, 2 KB
cache): ~14 representatives at T=0.1 falling rapidly to ~1.5 at T=10 —
even the tightest threshold keeps only 14% of the network awake.
"""

from __future__ import annotations

from conftest import is_paper_scale, repetitions, run_once

from repro.experiments.reporting import format_series
from repro.experiments.weather_experiments import (
    DEFAULT_THRESHOLD_SWEEP,
    figure11_vary_threshold,
)

QUICK_SWEEP = (0.1, 0.5, 1.0, 5.0, 10.0)


def test_fig11_snapshot_size_vs_threshold(benchmark, report):
    thresholds = DEFAULT_THRESHOLD_SWEEP if is_paper_scale() else QUICK_SWEEP

    series = run_once(
        benchmark,
        lambda: figure11_vary_threshold(
            thresholds=thresholds, repetitions=repetitions()
        ),
    )
    report(
        "fig11_threshold",
        format_series(series, "Figure 11 — snapshot size n1 vs error threshold T"),
    )
    means = series.means
    assert all(a >= b - 2.0 for a, b in zip(means, means[1:]))  # ~decreasing
    assert series.point_at(10.0).mean <= 10.0  # a handful at T=10
    assert series.point_at(0.1).mean <= 50.0   # still a minority at T=0.1
