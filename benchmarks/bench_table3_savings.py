"""Table 3: reduction in nodes participating in spatial snapshot queries.

Paper grid (200 random square aggregate queries per cell, T=1):

                    K=1             K=100
    Query range   0.2   0.7       0.2   0.7
    W^2 = 0.01    11%   29%        3%    7%
    W^2 = 0.1     38%   77%       16%   24%
    W^2 = 0.5     52%   91%       23%   49%

Savings grow with the query area and the transmission range, and shrink
with K; the best cell saves about 90% of the participating nodes.
"""

from __future__ import annotations

from conftest import is_paper_scale, run_once

from repro.experiments.reporting import format_table3
from repro.experiments.savings import table3_savings


def test_table3_participation_savings(benchmark, report):
    n_queries = 200 if is_paper_scale() else 100

    result = run_once(benchmark, lambda: table3_savings(n_queries=n_queries))
    report(
        "table3_savings",
        format_table3(
            result,
            "Table 3 — reduction in nodes participating in a spatial snapshot query",
        ),
    )
    # directional claims
    for reach in (0.2, 0.7):
        for k in (1, 100):
            assert (
                result.cell(0.5, reach, k).savings
                > result.cell(0.01, reach, k).savings
            )
    for k in (1, 100):
        assert result.cell(0.5, 0.7, k).savings > result.cell(0.5, 0.2, k).savings
    assert result.cell(0.5, 0.7, 1).savings > result.cell(0.5, 0.7, 100).savings
    # headline magnitude: the best cell saves the vast majority of nodes
    assert result.cell(0.5, 0.7, 1).savings > 0.6
